"""Lightweight wall-time profiling of the simulator's per-cycle phases.

Answers "where does *host* time go" (as opposed to the tracer/metrics,
which account *simulated* cycles): the simulator's profiled step wraps
each phase — fault injection, XB, SA, VA, RC, link dispatch, NIC — in a
``perf_counter`` pair and feeds the deltas here.  To keep the profiled
run cheap, only every ``sample_every``-th cycle is timed; shares are
unbiased because the sampling is periodic and phase mix drifts slowly.

Profiles are wall-clock measurements, so unlike metrics they are *not*
bit-identical across runs or shardings; merged reports sum times and
samples in task-index order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = ["STAGE_NAMES", "StageProfiler", "merge_profiles"]

#: the simulator phases, in per-cycle execution order
STAGE_NAMES: Tuple[str, ...] = (
    "faults", "xb", "sa", "va", "rc", "link", "nic",
)

DEFAULT_SAMPLE_EVERY = 16


class StageProfiler:
    """Accumulates sampled wall time per simulator phase."""

    __slots__ = ("sample_every", "samples", "_time", "_count")

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        #: number of fully profiled cycles
        self.samples = 0
        self._time: Dict[str, float] = {s: 0.0 for s in STAGE_NAMES}
        self._count: Dict[str, int] = {s: 0 for s in STAGE_NAMES}

    # ------------------------------------------------------------------
    def should_sample(self, cycle: int) -> bool:
        return cycle % self.sample_every == 0

    def record(self, stage: str, seconds: float) -> None:
        self._time[stage] += seconds
        self._count[stage] += 1

    def cycle_done(self) -> None:
        self.samples += 1

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return sum(self._time.values())

    def snapshot(self) -> dict:
        """Picklable summary: per-stage seconds, samples, and share."""
        total = self.total_time
        return {
            "sample_every": self.sample_every,
            "samples": self.samples,
            "stages": {
                s: {
                    "time_s": self._time[s],
                    "samples": self._count[s],
                    "share": (self._time[s] / total) if total > 0 else 0.0,
                }
                for s in STAGE_NAMES
            },
        }


def merge_profiles(snapshots: Iterable[Optional[dict]]) -> Optional[dict]:
    """Sum profile snapshots (skipping ``None``); ``None`` if all empty."""
    merged: Optional[dict] = None
    for snap in snapshots:
        if not snap:
            continue
        if merged is None:
            merged = {
                "sample_every": snap["sample_every"],
                "samples": 0,
                "stages": {
                    s: {"time_s": 0.0, "samples": 0, "share": 0.0}
                    for s in snap["stages"]
                },
            }
        merged["samples"] += snap["samples"]
        for s, row in snap["stages"].items():
            acc = merged["stages"].setdefault(
                s, {"time_s": 0.0, "samples": 0, "share": 0.0}
            )
            acc["time_s"] += row["time_s"]
            acc["samples"] += row["samples"]
    if merged is not None:
        total = sum(r["time_s"] for r in merged["stages"].values())
        for row in merged["stages"].values():
            row["share"] = (row["time_s"] / total) if total > 0 else 0.0
    return merged
