"""Flit-lifecycle event tracer with bounded ring-buffer storage.

Every stage of a flit's life through the RC/VA/SA/XB pipeline emits one
event when tracing is enabled:

========== ===========================================================
kind       emitted when
========== ===========================================================
inject     a flit leaves the NIC source queue onto the local input port
rc         routing computation resolves a head flit's output port
va_grant   VC allocation succeeds (``borrowed`` set on lent arbiters)
va_retry   a stage-2 VA arbiter fault forces a retry (+1 cycle)
sa_grant   switch allocation succeeds (``secondary`` marks the
           crossbar secondary path, the paper's FSP)
sa_bypass  the SA stage-1 bypass granted the rotating default winner
xb         a flit traverses the crossbar (primary or secondary mux)
link       a flit leaves a router onto an inter-router link
eject      a flit is consumed by the destination NIC
========== ===========================================================

The per-kind payload fields are pinned by :data:`EVENT_SCHEMA` (and a
golden test).  Storage is a ``deque(maxlen=capacity)`` ring: the latest
``capacity`` events are retained, older ones are dropped and counted, so
tracing a long run is memory-bounded by construction.

Emission sites live behind ``tracer is not None`` attribute checks in the
router/NIC/simulator hot paths — with tracing disabled the only cost is
that check.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

__all__ = ["EVENT_KINDS", "EVENT_SCHEMA", "EventTracer", "TraceEvent"]

#: event kind -> sorted tuple of payload field names (the pinned schema)
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "inject": ("dest", "flit", "packet", "src", "vc", "vnet"),
    "rc": ("in_port", "out_port", "packet"),
    "va_grant": ("borrowed", "in_port", "in_slot", "out_port", "out_vc", "packet"),
    "va_retry": ("out_port", "out_vc", "packet"),
    "sa_grant": ("in_port", "out_port", "packet", "secondary"),
    "sa_bypass": ("packet", "port", "slot"),
    "xb": ("flit", "in_port", "out_port", "out_vc", "packet", "secondary"),
    "link": ("flit", "out_port", "out_vc", "packet"),
    "eject": ("dest", "flit", "packet", "src", "vc"),
}

EVENT_KINDS: Tuple[str, ...] = tuple(sorted(EVENT_SCHEMA))

#: one stored event: (cycle, kind, node, payload)
TraceEvent = Tuple[int, str, int, dict]

DEFAULT_CAPACITY = 16384


class EventTracer:
    """Bounded ring buffer of flit-lifecycle events."""

    __slots__ = ("capacity", "emitted", "_buf")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = capacity
        self.emitted = 0
        self._buf: Deque[TraceEvent] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    def emit(self, cycle: int, kind: str, node: int, **payload: object) -> None:
        """Record one event; oldest events fall off a full ring."""
        self.emitted += 1
        self._buf.append((cycle, kind, node, payload))

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events lost to the ring bound."""
        return self.emitted - len(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list:
        """Retained events, oldest first."""
        return list(self._buf)

    def snapshot(self) -> dict:
        """Picklable export: ring contents plus accounting."""
        return {
            "capacity": self.capacity,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "events": self.events(),
        }

    def clear(self) -> None:
        self._buf.clear()
        self.emitted = 0


def validate_event(event: TraceEvent) -> None:
    """Assert ``event`` conforms to :data:`EVENT_SCHEMA` (test helper)."""
    cycle, kind, node, payload = event
    if kind not in EVENT_SCHEMA:
        raise ValueError(f"unknown event kind {kind!r}")
    expected = EVENT_SCHEMA[kind]
    got = tuple(sorted(payload))
    if got != expected:
        raise ValueError(
            f"{kind} payload fields {got} != schema {expected}"
        )
    if cycle < 0 or node < 0:
        raise ValueError(f"negative cycle/node in {event!r}")
