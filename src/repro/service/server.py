"""The asyncio results server (stdlib-only HTTP/1.1).

One :class:`SweepService` owns a :class:`~repro.service.cache.ResultCache`,
an in-flight table, and a metrics registry.  The request path for
``POST /v1/sweeps``:

1. canonicalize the JSON body into the experiment's frozen config
   dataclass and fingerprint it (:mod:`repro.service.fingerprint`);
2. **hit** — a validated cache entry exists: serve it (no simulation);
3. **join** — the same fingerprint is already being computed: subscribe
   to the existing computation instead of starting a second one (N
   concurrent identical requests run the sweep exactly once);
4. **miss** — start the computation on a worker thread, inside the
   resilient sweep runtime (supervised worker processes, retries,
   watchdogs — :mod:`repro.experiments.resilient`), store the entry,
   then answer everyone subscribed.

Clients that set ``"stream": true`` get a chunked NDJSON response:
completed sweep points as they finish (via the resilient runtime's
per-point progress hook), then the final result.  Because scheduling
between cache check and in-flight registration never awaits, the
hit/join/miss decision is atomic on the event loop.

Counters (``service.requests``, ``service.cache_hits``,
``service.cache_misses``, ``service.dedup_joined``,
``service.computations``, ``service.cache_poisoned``, …) live in an
observability :class:`~repro.observability.metrics.MetricsRegistry`
exposed at ``GET /v1/stats``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
import traceback
from typing import Any, Dict, Optional, Set, Tuple

from ..experiments.parallel import PartialSweepError
from ..experiments.resilient import RetryPolicy, sweep_runtime
from ..observability.metrics import MetricsRegistry
from .cache import ResultCache, make_entry
from .fingerprint import (
    CONFIG_TYPES,
    RequestError,
    effective_config,
    request_fingerprint,
)
from .results import render_result

__all__ = ["SweepService"]

_MAX_BODY = 4 << 20  # a config JSON has no business being larger
_EOF = object()


class _ComputeError(RuntimeError):
    """A computation failed; carries the HTTP payload for subscribers."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(payload.get("error", "computation failed"))
        self.status = status
        self.payload = payload


class _InFlight:
    """One running computation plus its streaming subscribers."""

    __slots__ = ("task", "subscribers")

    def __init__(self) -> None:
        self.task: Optional[asyncio.Task] = None
        self.subscribers: Set[asyncio.Queue] = set()


class SweepService:
    """The server object: routing, dedup, cache, and metrics.

    ``jobs`` is the default per-computation worker-process count,
    ``retry`` the resilient runtime policy applied to every computation,
    and ``max_concurrent`` caps how many distinct fingerprints compute
    at once (requests beyond the cap queue on the semaphore; identical
    requests never queue — they join the in-flight computation).
    """

    def __init__(
        self,
        cache_dir: str,
        *,
        jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        max_concurrent: int = 1,
        quick_default: bool = False,
        cache_max_bytes: Optional[int] = None,
        cache_max_entries: Optional[int] = None,
    ) -> None:
        self.cache = ResultCache(
            cache_dir, max_bytes=cache_max_bytes, max_entries=cache_max_entries
        )
        self.jobs = jobs
        self.retry = retry or RetryPolicy(max_attempts=2)
        self.quick_default = quick_default
        self.registry = MetricsRegistry()
        self._inflight: Dict[str, _InFlight] = {}
        #: deduplicated ``supports()`` decline strings from every lane
        #: sweep computed so far — /v1/stats surfaces them so an
        #: operator can see *why* a sweep ran on the slow path
        self._fallback_reasons: Dict[str, int] = {}
        self._slots = asyncio.Semaphore(max(1, max_concurrent))
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; any shared computation keeps running
        except Exception:  # pragma: no cover — defensive
            traceback.print_exc()
            try:
                await self._respond(writer, 500, {"error": "internal error"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > _MAX_BODY:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _start_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

    async def _send_event(
        self, writer: asyncio.StreamWriter, event: Dict[str, Any]
    ) -> None:
        line = (json.dumps(event, sort_keys=True) + "\n").encode()
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()

    async def _end_stream(self, writer: asyncio.StreamWriter) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
    ) -> None:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
        elif method == "GET" and path == "/v1/stats":
            await self._respond(writer, 200, self._stats())
        elif method == "GET" and path == "/v1/experiments":
            await self._respond(writer, 200, self._catalog())
        elif method == "GET" and path.startswith("/v1/results/"):
            await self._get_result(writer, path.rsplit("/", 1)[1])
        elif method == "GET" and path == "/v1/results":
            await self._respond(writer, 200, {"results": self.cache.index()})
        elif method == "POST" and path == "/v1/sweeps":
            await self._post_sweep(writer, body)
        else:
            await self._respond(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    def _stats(self) -> Dict[str, Any]:
        snap = self.registry.snapshot()
        return {
            "counters": snap["counters"],
            "inflight": len(self._inflight),
            "cache_entries": len(self.cache),
            "cache_poisoned": self.cache.poisoned,
            "cache_evicted": self.cache.evicted,
            # reason → sweeps that reported it, across all computations
            "lane_fallback_reasons": dict(
                sorted(self._fallback_reasons.items())
            ),
        }

    def _catalog(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for name, cls in sorted(CONFIG_TYPES.items()):
            out[name] = {
                "config": cls.__name__,
                "fields": {
                    f.name: repr(f.default)
                    if f.default is not dataclasses.MISSING
                    else None
                    for f in dataclasses.fields(cls)
                },
            }
        return {"experiments": out}

    async def _get_result(
        self, writer: asyncio.StreamWriter, fingerprint: str
    ) -> None:
        entry = self.cache.get(fingerprint)
        if entry is None:
            await self._respond(
                writer, 404, {"error": f"no result for {fingerprint!r}"}
            )
        else:
            await self._respond(
                writer, 200, {"cached": True, **entry.to_json()}
            )

    # ------------------------------------------------------------------
    # the sweep endpoint
    # ------------------------------------------------------------------
    async def _post_sweep(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        self.registry.inc("service.requests")
        try:
            req = json.loads(body.decode() or "{}")
            if not isinstance(req, dict):
                raise RequestError("request body must be a JSON object")
            name = req.get("experiment")
            if not isinstance(name, str):
                raise RequestError("missing 'experiment' (string)")
            seed = req.get("seed")
            if seed is not None and not isinstance(seed, int):
                raise RequestError("'seed' must be an integer")
            config, residual_seed = effective_config(
                name,
                req.get("config"),
                quick=bool(req.get("quick", self.quick_default)),
                seed=seed,
            )
            fingerprint = request_fingerprint(
                name, config, seed=residual_seed
            )
        except RequestError as exc:
            self.registry.inc("service.bad_requests")
            await self._respond(writer, 400, {"error": str(exc)})
            return
        except ValueError as exc:
            self.registry.inc("service.bad_requests")
            await self._respond(writer, 400, {"error": f"bad JSON: {exc}"})
            return
        stream = bool(req.get("stream", False))
        jobs = req.get("jobs", self.jobs)

        # hit / join / miss — no await between the checks, so the
        # decision is atomic on the event loop and a fingerprint can
        # never be computed twice concurrently
        entry = self.cache.get(fingerprint)
        if entry is not None:
            self.registry.inc("service.cache_hits")
            await self._answer(writer, stream, entry.to_json(), cached=True)
            return
        self.registry.inc("service.cache_misses")
        flight = self._inflight.get(fingerprint)
        if flight is None:
            flight = _InFlight()
            self._inflight[fingerprint] = flight
            flight.task = asyncio.create_task(
                self._compute(fingerprint, name, config, residual_seed, jobs)
            )
            # a disconnected client must not leave the shared task's
            # exception unretrieved
            flight.task.add_done_callback(
                lambda t: t.exception() if not t.cancelled() else None
            )
            self.registry.inc("service.computations")
            self.registry.set_gauge(
                "service.inflight", len(self._inflight)
            )
        else:
            self.registry.inc("service.dedup_joined")

        if stream:
            await self._stream_answer(writer, fingerprint, flight)
        else:
            await self._plain_answer(writer, flight)

    async def _plain_answer(
        self, writer: asyncio.StreamWriter, flight: _InFlight
    ) -> None:
        try:
            entry_json = await asyncio.shield(flight.task)
        except _ComputeError as exc:
            await self._respond(writer, exc.status, exc.payload)
            return
        await self._answer(writer, False, entry_json, cached=False)

    async def _stream_answer(
        self,
        writer: asyncio.StreamWriter,
        fingerprint: str,
        flight: _InFlight,
    ) -> None:
        queue: asyncio.Queue = asyncio.Queue()
        flight.subscribers.add(queue)
        try:
            await self._start_stream(writer)
            await self._send_event(
                writer,
                {
                    "event": "accepted",
                    "fingerprint": fingerprint,
                    "cached": False,
                },
            )
            while True:
                item = await queue.get()
                if item is _EOF:
                    break
                await self._send_event(writer, {"event": "point", **item})
            try:
                entry_json = await asyncio.shield(flight.task)
                await self._send_event(
                    writer,
                    {"event": "result", "cached": False, **entry_json},
                )
            except _ComputeError as exc:
                await self._send_event(
                    writer,
                    {"event": "error", "status": exc.status, **exc.payload},
                )
            await self._end_stream(writer)
        finally:
            flight.subscribers.discard(queue)

    async def _answer(
        self,
        writer: asyncio.StreamWriter,
        stream: bool,
        entry_json: Dict[str, Any],
        *,
        cached: bool,
    ) -> None:
        if stream:
            await self._start_stream(writer)
            await self._send_event(
                writer,
                {
                    "event": "accepted",
                    "fingerprint": entry_json["fingerprint"],
                    "cached": cached,
                },
            )
            await self._send_event(
                writer, {"event": "result", "cached": cached, **entry_json}
            )
            await self._end_stream(writer)
        else:
            await self._respond(writer, 200, {"cached": cached, **entry_json})

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def _publish(self, fingerprint: str, item: Any) -> None:
        if item is not _EOF:
            self.registry.inc(
                "service.points_completed",
                item.get("points", 1) if isinstance(item, dict) else 1,
            )
        flight = self._inflight.get(fingerprint)
        if flight is None:
            return
        for queue in list(flight.subscribers):
            queue.put_nowait(item)

    async def _compute(
        self,
        fingerprint: str,
        name: str,
        config: Any,
        residual_seed: Optional[int],
        jobs: Optional[int],
    ) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()

        def progress(event: Dict[str, Any]) -> None:
            # called on the supervisor thread — hop onto the event loop
            loop.call_soon_threadsafe(self._publish, fingerprint, event)

        def work() -> Any:
            from ..experiments.runner import EXPERIMENTS

            entry = EXPERIMENTS[name]
            module = getattr(entry, "module", None)
            with sweep_runtime(retry=self.retry, progress=progress):
                if module is not None:
                    return module.run(
                        config, jobs=jobs, seed=residual_seed
                    )
                return entry(False, jobs)  # registry shim (tests)

        try:
            async with self._slots:
                t0 = time.perf_counter()
                try:
                    result = await asyncio.to_thread(work)
                except PartialSweepError as exc:
                    self.registry.inc("service.partial_failures")
                    raise _ComputeError(
                        503,
                        {
                            "error": "partial sweep: retries exhausted on "
                            "some points; result not cached",
                            "experiment": name,
                            "fingerprint": fingerprint,
                            "report": exc.report.format(),
                        },
                    ) from exc
                except Exception as exc:
                    self.registry.inc("service.failures")
                    raise _ComputeError(
                        500,
                        {
                            "error": f"{type(exc).__name__}: {exc}",
                            "experiment": name,
                            "fingerprint": fingerprint,
                        },
                    ) from exc
                wall_s = time.perf_counter() - t0
                payload, sweep = render_result(result)
                if sweep is not None and sweep.get("fallbacks"):
                    self.registry.inc(
                        "service.lane_fallbacks", sweep["fallbacks"]
                    )
                    for reason in sweep.get("fallback_reasons", ()):
                        self._fallback_reasons[reason] = (
                            self._fallback_reasons.get(reason, 0) + 1
                        )
                compute = {"wall_s": round(wall_s, 6), "jobs": jobs}
                if sweep is not None:
                    compute["sweep"] = sweep
                entry = make_entry(
                    fingerprint, name, config, payload, compute
                )
                before = self.cache.evicted
                self.cache.put(entry)
                swept = self.cache.evicted - before
                if swept:
                    self.registry.inc("service.cache_evicted", swept)
                return entry.to_json()
        finally:
            self._publish(fingerprint, _EOF)
            self._inflight.pop(fingerprint, None)
            self.registry.set_gauge("service.inflight", len(self._inflight))


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def serve(
    host: str,
    port: int,
    cache_dir: str,
    *,
    jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    max_concurrent: int = 1,
    ready_line: bool = True,
    cache_max_bytes: Optional[int] = None,
    cache_max_entries: Optional[int] = None,
) -> None:
    """Entry point used by ``python -m repro.service``: serve until cancelled."""
    service = SweepService(
        cache_dir,
        jobs=jobs,
        retry=retry,
        max_concurrent=max_concurrent,
        cache_max_bytes=cache_max_bytes,
        cache_max_entries=cache_max_entries,
    )
    bound = await service.start(host, port)
    if ready_line:
        print(
            f"repro.service listening on http://{host}:{bound} "
            f"(cache: {cache_dir})",
            flush=True,
        )
    try:
        await service.serve_forever()
    finally:
        await service.close()
