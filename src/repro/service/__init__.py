"""Sweep-as-a-service: an async results server with a content-addressed cache.

The production framing of the reproduction (see ``ROADMAP.md``): instead
of every caller re-simulating the paper's fig7/fig8-style experiments,
an asyncio HTTP server (:mod:`repro.service.server`) accepts experiment
configs as JSON, canonicalizes them into the existing frozen config
dataclasses (:mod:`repro.service.fingerprint`), and keys everything on
their content fingerprints:

* a completed request is served from a persistent content-addressed
  :class:`~repro.service.cache.ResultCache` — sound by construction,
  because PRs 1–6 made every experiment exactly deterministic (same
  fingerprint ⇒ bit-identical result);
* identical requests *in flight* are deduplicated: N concurrent clients
  asking for the same fingerprint share one computation;
* cache misses fan out onto the resilient sweep runtime
  (:mod:`repro.experiments.resilient` — supervised workers, retries,
  watchdogs), and completed sweep points stream back to clients as
  NDJSON chunks while the sweep is still running.

Run it with ``python -m repro.service``; drive it with the stdlib-only
async client in :mod:`repro.service.client`.  See ``docs/service.md``.
"""

from .cache import CacheEntry, ResultCache
from .client import ServiceClient, ServiceError, wait_ready
from .fingerprint import (
    CONFIG_TYPES,
    build_config,
    canonical,
    effective_config,
    request_fingerprint,
)
from .server import SweepService

__all__ = [
    "CONFIG_TYPES",
    "CacheEntry",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "SweepService",
    "build_config",
    "canonical",
    "effective_config",
    "request_fingerprint",
    "wait_ready",
]
