"""Persistent content-addressed result store (:class:`ResultCache`).

The queryable generalization of the resilient runtime's
:class:`~repro.experiments.resilient.CheckpointStore`: where the
checkpoint store remembers *partial* progress of one run directory so a
killed sweep can resume, the result cache remembers *finished*
experiments forever, keyed by their request fingerprint
(:mod:`repro.service.fingerprint`).  It shares the checkpoint store's
durability primitive — :func:`~repro.experiments.resilient.atomic_write_json`,
write-to-temp + :func:`os.replace` — so readers never observe a torn
entry, and adds what a cache needs on top:

* **content addressing** — one JSON file per fingerprint, sharded by the
  first two hex chars (``entries/ab/abcd….json``), so lookups are one
  ``open()`` and the store needs no index to rebuild;
* **fingerprint-validated reads** — every entry embeds the canonical
  request it answers plus a SHA-256 digest of its result payload; a read
  recomputes both and treats any mismatch (bit rot, truncation, manual
  tampering, a hash-scheme change) as a **miss**: the poisoned entry is
  deleted and the experiment recomputed, never served;
* **exact determinism as the correctness argument** — same fingerprint
  ⇒ bit-identical result (PRs 1–6), so serving a validated entry is
  indistinguishable from recomputing it;
* **bounded growth for long-lived deployments** — optional
  ``max_bytes``/``max_entries`` budgets enforced LRU-wise after every
  write: a validated read touches its entry's mtime, so recency survives
  process restarts and needs no sidecar index.  Because a hit is
  bit-identical to recomputing, eviction only ever costs wall time,
  never correctness.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..experiments.resilient import atomic_write_json
from .fingerprint import canonical_json

__all__ = ["CacheEntry", "PoisonedEntryError", "ResultCache", "payload_digest"]

_ENTRY_VERSION = 1


class PoisonedEntryError(RuntimeError):
    """A stored entry failed validation (corrupt, truncated, or forged)."""


def payload_digest(result: Any) -> str:
    """SHA-256 of the canonical JSON encoding of a result payload."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One validated cache record, as stored on disk.

    ``request`` is the canonical form of the resolved config (class tag
    + every semantic field — see :func:`repro.service.fingerprint.canonical`),
    ``result`` the JSON rendering of the :class:`ExperimentResult`, and
    ``compute`` non-semantic provenance (wall time, sweep shape) that is
    deliberately excluded from ``sha256``'s coverage — it describes the
    one computation that produced the entry, not the answer itself.
    """

    fingerprint: str
    experiment: str
    request: Any
    result: Dict[str, Any]
    compute: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": _ENTRY_VERSION,
            "fingerprint": self.fingerprint,
            "experiment": self.experiment,
            "request": self.request,
            "result": self.result,
            "compute": self.compute,
            "sha256": payload_digest(self.result),
        }


class ResultCache:
    """Durable fingerprint -> :class:`CacheEntry` store with validated reads.

    All mutations are atomic (temp file + rename); concurrent readers of
    an entry being replaced see either the old or the new version.  The
    ``poisoned`` counter tallies entries that failed validation and were
    evicted — the server surfaces it as ``service.cache_poisoned``.

    ``max_bytes``/``max_entries`` (``None`` = unbounded) cap the store:
    after every :meth:`put` the least-recently-used entries are deleted
    until both budgets hold, never touching the entry just written.
    Recency is the entry file's mtime — refreshed by every validated
    :meth:`get` hit — so the LRU order is durable across restarts.  The
    ``evicted`` counter tallies budget evictions (the server surfaces it
    as ``service.cache_evicted``); poisoned deletions count separately.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.entries_dir = self.root / "entries"
        self.entries_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.poisoned = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.entries_dir / fingerprint[:2] / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.entries_dir.glob("??/*.json"))

    # ------------------------------------------------------------------
    def put(self, entry: CacheEntry) -> Path:
        """Durably store ``entry`` (atomic write; replaces any old entry).

        With a budget configured, evicts least-recently-used entries
        afterwards until the store fits; the entry just written is never
        evicted, even when it alone exceeds ``max_bytes``.
        """
        path = self.path_for(entry.fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, entry.to_json(), sort_keys=True, indent=1)
        if self.max_bytes is not None or self.max_entries is not None:
            self.enforce_budget(protect=entry.fingerprint)
        return path

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """Validated read: a poisoned entry is evicted and reported a miss.

        Validation re-derives everything the entry claims: the JSON must
        parse, carry the supported version, name the fingerprint it is
        filed under, and its result payload must hash to the recorded
        digest.  Failing any check means the bytes on disk are not the
        bytes the computation wrote — serving them would break the
        "cache hit == recomputation" contract, so the entry is deleted
        and the caller recomputes.
        """
        path = self.path_for(fingerprint)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            entry = self._validate(fingerprint, raw)
        except PoisonedEntryError:
            self.poisoned += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover — already evicted
                pass
            return None
        try:
            os.utime(path)  # refresh LRU recency (best-effort)
        except OSError:  # pragma: no cover — raced with eviction
            pass
        return entry

    def _validate(self, fingerprint: str, raw: bytes) -> CacheEntry:
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise PoisonedEntryError(f"undecodable entry: {exc}") from exc
        if not isinstance(data, dict):
            raise PoisonedEntryError("entry is not an object")
        if data.get("version") != _ENTRY_VERSION:
            raise PoisonedEntryError(
                f"unsupported entry version {data.get('version')!r}"
            )
        if data.get("fingerprint") != fingerprint:
            raise PoisonedEntryError(
                f"entry claims fingerprint {data.get('fingerprint')!r} but "
                f"is filed under {fingerprint!r}"
            )
        result = data.get("result")
        if not isinstance(result, dict):
            raise PoisonedEntryError("entry has no result payload")
        digest = payload_digest(result)
        if data.get("sha256") != digest:
            raise PoisonedEntryError(
                "result payload digest mismatch: entry records "
                f"{data.get('sha256')!r}, payload hashes to {digest!r}"
            )
        return CacheEntry(
            fingerprint=fingerprint,
            experiment=str(data.get("experiment", "")),
            request=data.get("request"),
            result=result,
            compute=dict(data.get("compute") or {}),
        )

    # ------------------------------------------------------------------
    def enforce_budget(self, protect: Optional[str] = None) -> int:
        """Delete least-recently-used entries until both budgets hold.

        Returns the number of entries deleted (also accumulated into
        ``evicted``).  ``protect`` names one fingerprint that is never
        deleted — :meth:`put` passes the entry it just wrote, so a
        budget smaller than a single entry degrades to "keep only the
        latest", not to an always-empty cache.  One directory scan per
        call, no sidecar index to maintain or corrupt; mtime ties break
        by path so the order is deterministic.
        """
        infos: list[tuple[int, str, Path, int]] = []
        total = 0
        for path in self.entries_dir.glob("??/*.json"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover — raced with a delete
                continue
            infos.append((st.st_mtime_ns, path.name, path, st.st_size))
            total += st.st_size
        count = len(infos)
        infos.sort()
        deleted = 0
        for _, _, path, size in infos:
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            over_entries = (
                self.max_entries is not None and count > self.max_entries
            )
            if not (over_bytes or over_entries):
                break
            if protect is not None and path.stem == protect:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover — raced with a delete
                continue
            total -= size
            count -= 1
            deleted += 1
        self.evicted += deleted
        return deleted

    # ------------------------------------------------------------------
    def fingerprints(self) -> Iterator[str]:
        """All stored fingerprints (unvalidated — validation is on read)."""
        for path in sorted(self.entries_dir.glob("??/*.json")):
            yield path.stem

    def index(self) -> Dict[str, str]:
        """fingerprint -> experiment-name map of every *valid* entry."""
        out: Dict[str, str] = {}
        for fp in self.fingerprints():
            entry = self.get(fp)
            if entry is not None:
                out[fp] = entry.experiment
        return out


def make_entry(
    fingerprint: str,
    experiment: str,
    config: Any,
    result: Dict[str, Any],
    compute: Dict[str, Any],
) -> CacheEntry:
    """Assemble the entry for a freshly computed result."""
    return CacheEntry(
        fingerprint=fingerprint,
        experiment=experiment,
        request=json.loads(canonical_json(config)),
        result=result,
        compute=compute,
    )
