"""Canonical experiment-request fingerprints (the cache key).

A service request names an experiment plus an optional config.  This
module turns that pair into a **content fingerprint** with three
properties the cache and the in-flight deduplicator rely on:

* **Canonical.**  The JSON config dict is first built into the
  experiment's frozen config dataclass (:func:`build_config`) and then
  re-serialized field by field in sorted-key order
  (:func:`canonical`), so spelling differences in the request — key
  order, lists vs tuples, an explicitly-spelled default vs an omitted
  field vs ``config: null`` — all collapse to the same bytes.
* **Semantic-only.**  Execution knobs that are *bit-identity neutral*
  never reach the fingerprint: ``jobs`` (``tests/test_parallel.py``
  pins serial == parallel), ``stream``, retry policy, checkpoint
  directories.  Two requests that differ only in those fields hash
  identically and share one cache entry (:data:`NON_SEMANTIC_KEYS`).
* **Complete.**  Every semantic field of the config dataclass is
  hashed, including nested dataclasses (``FaultSweepConfig.latency``,
  ``MTTFConfig.geom``, …) and the ``seed`` override — any change that
  could change the simulated result changes the fingerprint.

Determinism makes this sound: PRs 1–6 pinned every experiment to be a
pure function of its config (serial == parallel == resumed == event
engine == reference stepper, all bit-identical), so one fingerprint maps
to exactly one result and a cache hit is indistinguishable from a
recomputation.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from hashlib import sha256
from typing import Any, Dict, Mapping, Optional

from ..experiments import (
    design_space,
    detection_latency,
    energy,
    fault_campaign,
    fault_sweep,
    latency,
    load_latency,
    mttf,
    mttf_sensitivity,
    network_reliability,
    reliability_curves,
    spf_sweep,
    table3,
)
from ..experiments.report import override_seed
from ..reliability.stages import RouterGeometry

__all__ = [
    "CONFIG_TYPES",
    "NON_SEMANTIC_KEYS",
    "RequestError",
    "build_config",
    "canonical",
    "canonical_json",
    "effective_config",
    "request_fingerprint",
]


class RequestError(ValueError):
    """A request names an unknown experiment / malformed config."""


#: experiment name -> its unified-API config dataclass (mirrors
#: ``repro.experiments.runner.EXPERIMENTS``; the analytic geometry-only
#: experiments all take a RouterGeometry as their whole config)
CONFIG_TYPES: Dict[str, type] = {
    "table1": RouterGeometry,
    "table2": RouterGeometry,
    "area_power": RouterGeometry,
    "critical_path": RouterGeometry,
    "mttf": mttf.MTTFConfig,
    "mttf_sensitivity": mttf_sensitivity.MTTFSensitivityConfig,
    "table3": table3.Table3Config,
    "spf_sweep": spf_sweep.SPFSweepConfig,
    "fig7": latency.SuiteRunConfig,
    "fig8": latency.SuiteRunConfig,
    "load_latency": load_latency.LoadLatencyConfig,
    "network_reliability": network_reliability.NetworkReliabilityConfig,
    "reliability_curves": reliability_curves.ReliabilityCurvesConfig,
    "energy": energy.EnergyConfig,
    "detection_latency": detection_latency.DetectionLatencyConfig,
    "fault_campaign": fault_campaign.CampaignConfig,
    "fault_sweep": fault_sweep.FaultSweepConfig,
    "design_space": design_space.DesignSpaceConfig,
}

#: request keys that never affect the computed result (and therefore
#: never reach the fingerprint): parallelism is a pure wall-clock knob
#: (serial == parallel, bit-identical), streaming is a transport choice
NON_SEMANTIC_KEYS = frozenset({"jobs", "stream"})

_SCALARS = (int, float, str, bool)


def _unwrap_optional(tp: Any) -> Any:
    """``Optional[X]``/``X | None`` -> ``X`` (unions beyond that kept)."""
    origin = typing.get_origin(tp)
    if origin is typing.Union or origin is getattr(types, "UnionType", None):
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return tp


def _field_types(cls: type) -> Dict[str, Any]:
    """Resolved (PEP 563-safe) field name -> type map of a dataclass."""
    try:
        return typing.get_type_hints(cls)
    except Exception:  # pragma: no cover — unresolvable forward ref
        return {f.name: f.type for f in dataclasses.fields(cls)}


def build_config(name: str, data: Optional[Mapping[str, Any]]) -> Any:
    """Build experiment ``name``'s frozen config dataclass from JSON.

    ``data`` maps field names to values; nested dataclass fields accept
    nested dicts, tuple fields accept JSON lists.  ``None``/``{}`` mean
    "the experiment's defaults".  Unknown experiments, unknown fields,
    and uncoercible values raise :class:`RequestError` (the server maps
    it to HTTP 400).
    """
    cls = CONFIG_TYPES.get(name)
    if cls is None:
        raise RequestError(
            f"unknown experiment {name!r}; available: {sorted(CONFIG_TYPES)}"
        )
    if not data:
        return None
    return _build(cls, data, where=name)


def _build(cls: type, data: Mapping[str, Any], where: str) -> Any:
    if not isinstance(data, Mapping):
        raise RequestError(
            f"{where}: expected an object for {cls.__name__}, "
            f"got {type(data).__name__}"
        )
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(fields)
    if unknown:
        raise RequestError(
            f"{where}: unknown {cls.__name__} field(s) {sorted(unknown)}; "
            f"valid fields: {sorted(fields)}"
        )
    types = _field_types(cls)
    kwargs: Dict[str, Any] = {}
    for key, raw in data.items():
        kwargs[key] = _coerce(
            raw, _unwrap_optional(types.get(key, Any)), f"{where}.{key}"
        )
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"{where}: invalid {cls.__name__}: {exc}") from exc


def _coerce(value: Any, tp: Any, where: str) -> Any:
    if value is None:
        return None
    if dataclasses.is_dataclass(tp) and isinstance(tp, type):
        if isinstance(value, tp):
            return value
        return _build(tp, value, where)
    if typing.get_origin(tp) is tuple or tp is tuple:
        if isinstance(value, (list, tuple)):
            return tuple(value)
        raise RequestError(
            f"{where}: expected a list, got {type(value).__name__}"
        )
    if isinstance(value, list):
        # untyped/Any sequence fields: JSON has no tuples, configs do
        return tuple(value)
    if isinstance(value, _SCALARS) or isinstance(value, Mapping):
        return value
    raise RequestError(
        f"{where}: unsupported value {value!r}"
    )


def canonical(obj: Any) -> Any:
    """Recursively reduce a config object to JSON-ready builtins.

    Dataclasses become ``{"__config__": ClassName, **fields}`` dicts (the
    class tag keeps two structurally-identical but differently-typed
    configs apart), tuples become lists.  Raises :class:`RequestError`
    on anything that cannot be represented — an unhashable config must
    not silently collide.
    """
    if obj is None or isinstance(obj, _SCALARS):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out: Dict[str, Any] = {"__config__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, Mapping):
        return {str(k): canonical(obj[k]) for k in sorted(obj)}
    raise RequestError(
        f"config value {obj!r} ({type(obj).__name__}) is not fingerprintable"
    )


def canonical_json(obj: Any) -> str:
    """The canonical bytes that get hashed (also stored in cache entries)."""
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def effective_config(
    name: str,
    config: Any = None,
    *,
    quick: bool = False,
    seed: Optional[int] = None,
) -> tuple[Any, Optional[int]]:
    """Resolve a request to the exact config object ``run()`` will see.

    Applies the same defaulting the CLI does — ``quick`` selects the
    registry's quick config, a missing config falls back to the config
    class's own defaults — then folds ``seed`` into the config when it
    has a ``seed`` field.  Returns ``(config, residual_seed)`` where
    ``residual_seed`` is non-None only for configs without a seed field
    (it is still passed to ``run(seed=...)`` and still fingerprinted).

    Resolving *before* fingerprinting is what makes ``config: null``,
    ``config: {}`` and an explicitly-spelled all-defaults config hash
    identically: they are the same computation.
    """
    from ..experiments.runner import EXPERIMENTS, ExperimentEntry

    if isinstance(config, Mapping) or config is None:
        config = build_config(name, config)
    if config is None:
        entry = EXPERIMENTS.get(name)
        if isinstance(entry, ExperimentEntry):
            factory = entry.quick_config if quick else entry.default_config
            config = factory()
    if config is None:
        config = CONFIG_TYPES[name]()
    folded = override_seed(config, seed)
    residual_seed = seed if (seed is not None and folded is config) else None
    return folded, residual_seed


def request_fingerprint(
    name: str, config: Any, *, seed: Optional[int] = None
) -> str:
    """Content fingerprint (64 hex chars) of one resolved request.

    ``config`` must already be the *effective* config object (see
    :func:`effective_config`); ``seed`` is the residual seed for configs
    that have no seed field.  Same fingerprint ⇒ bit-identical result.
    """
    if name not in CONFIG_TYPES:
        raise RequestError(
            f"unknown experiment {name!r}; available: {sorted(CONFIG_TYPES)}"
        )
    payload = {
        "v": 1,
        "experiment": name,
        "config": canonical(config),
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256(blob.encode()).hexdigest()
