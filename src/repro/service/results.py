"""JSON rendering of :class:`~repro.experiments.report.ExperimentResult`.

The HTTP service and the result cache speak JSON; experiment modules
return rich Python objects (rows with numpy scalars, ``extras`` holding
sweep reports, ASCII charts, raw row tuples).  :func:`render_result`
flattens them deterministically:

* rows keep their full paper-vs-measured structure;
* ``extras`` keeps every JSON-representable value (tuples become lists,
  numpy scalars become Python numbers) and silently drops live objects
  (the sweep report is summarized separately under ``"sweep"`` — its
  wall times are provenance, not part of the deterministic payload, so
  the cache stores them outside the hashed result; see
  :mod:`repro.service.cache`);
* the human-readable ``format()`` text rides along for CLI-less
  clients.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

from ..experiments.parallel import SweepReport
from ..experiments.report import ExperimentResult

__all__ = ["render_result", "sweep_summary"]

_MISSING = object()


def _jsonable(value: Any) -> Any:
    """``value`` as JSON builtins, or ``_MISSING`` when unrepresentable."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "shape", None) == ():
        return _jsonable(item())  # numpy scalar
    if isinstance(value, (list, tuple)):
        out = [_jsonable(v) for v in value]
        return _MISSING if any(v is _MISSING for v in out) else out
    if isinstance(value, dict):
        out_d: Dict[str, Any] = {}
        for k, v in value.items():
            jv = _jsonable(v)
            if jv is _MISSING or not isinstance(k, (str, int, float, bool)):
                return _MISSING
            out_d[str(k)] = jv
        return out_d
    return _MISSING


def sweep_summary(report: Any) -> Optional[Dict[str, Any]]:
    """Non-semantic provenance of a sweep: shape + timing, no values."""
    if not isinstance(report, SweepReport):
        return None
    return {
        "points": report.points,
        "jobs": report.jobs,
        "resumed": report.resumed,
        "retries": report.retries,
        "timeouts": report.timeouts,
        "cycles": report.cycles,
        "wall_s": round(report.wall_time, 6),
        "setup_s": round(report.setup_time, 6),
        "run_s": round(report.run_time, 6),
        # lane-sweep diagnosability: points the batched engine declined
        # (re-run per point on the event engine) and *why* — mirrored
        # into the service's /v1/stats payload
        "fallbacks": report.fallbacks,
        "fallback_reasons": list(report.fallback_reasons),
    }


def render_result(
    result: ExperimentResult,
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Split one experiment result into (deterministic payload, provenance).

    The first element is the cacheable result body — everything in it is
    a pure function of the request fingerprint.  The second is the sweep
    summary (wall-clock timings vary run to run) or ``None`` for
    analytic experiments.
    """
    rows = [
        {
            "label": row.label,
            "measured": _none_if_missing(_jsonable(row.measured)),
            "paper": _none_if_missing(_jsonable(row.paper)),
            "unit": row.unit,
            "note": row.note,
        }
        for row in result.rows
    ]
    extras: Dict[str, Any] = {}
    sweep = None
    for key, value in result.extras.items():
        if key == "sweep":
            sweep = sweep_summary(value)
            continue
        jv = _jsonable(value)
        if jv is not _MISSING:
            extras[key] = jv
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "rows": rows,
        "extras": extras,
        "text": result.format(),
    }
    return payload, sweep


def _none_if_missing(value: Any) -> Any:
    return None if value is _MISSING else value
