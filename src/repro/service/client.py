"""Stdlib-only async client for the results server.

Used by the load test (``benchmarks/bench_sweep_service.py``), the CI
``service`` job, and anything else that wants protected-router numbers
without running a simulator: open a connection per request (the server
is ``Connection: close``), speak minimal HTTP/1.1, decode either a
``Content-Length`` JSON body or a chunked NDJSON stream.

>>> client = ServiceClient("127.0.0.1", 8733)
>>> reply = await client.sweep("fault_sweep", {"fault_counts": [0, 8]})
>>> reply["result"]["rows"][0]          # doctest: +SKIP
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError", "wait_ready"]


class ServiceError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Async client bound to one server address."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    # ------------------------------------------------------------------
    # raw HTTP
    # ------------------------------------------------------------------
    async def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        on_line: Optional[Callable[[dict], None]] = None,
    ) -> Tuple[int, Any]:
        """One HTTP exchange; returns ``(status, decoded JSON)``.

        For chunked (streaming) responses every NDJSON line is passed to
        ``on_line`` as it arrives and the *last* line is returned as the
        body — the server's final line is the result (or error) event.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            payload = b"" if body is None else json.dumps(body).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(None, 2)
            status = int(parts[1]) if len(parts) >= 2 else 0
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()

            if headers.get("transfer-encoding", "").lower() == "chunked":
                last: Any = None
                for raw in await _read_chunked_lines(reader):
                    decoded = json.loads(raw)
                    last = decoded
                    if on_line is not None:
                        on_line(decoded)
                return status, last
            length = int(headers.get("content-length", "0") or "0")
            raw_body = await reader.readexactly(length) if length else b""
            decoded = json.loads(raw_body) if raw_body.strip() else None
            return status, decoded
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    async def health(self) -> bool:
        try:
            status, _ = await self._request("GET", "/healthz")
            return status == 200
        except OSError:
            return False

    async def stats(self) -> Dict[str, Any]:
        status, body = await self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(status, body)
        return body

    async def experiments(self) -> Dict[str, Any]:
        status, body = await self._request("GET", "/v1/experiments")
        if status != 200:
            raise ServiceError(status, body)
        return body["experiments"]

    async def result(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        status, body = await self._request(
            "GET", f"/v1/results/{fingerprint}"
        )
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(status, body)
        return body

    async def sweep(
        self,
        experiment: str,
        config: Optional[dict] = None,
        *,
        seed: Optional[int] = None,
        quick: bool = False,
        jobs: Optional[int] = None,
        stream: bool = False,
        on_point: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, Any]:
        """Run (or fetch) one experiment; returns the full cache entry.

        With ``stream=True`` the server sends completed sweep points as
        they finish; each ``{"event": "point", ...}`` line is handed to
        ``on_point``.  Either way the returned dict carries ``cached``,
        ``fingerprint``, ``result`` and ``compute``.
        """
        body: Dict[str, Any] = {"experiment": experiment, "stream": stream}
        if config is not None:
            body["config"] = config
        if seed is not None:
            body["seed"] = seed
        if quick:
            body["quick"] = True
        if jobs is not None:
            body["jobs"] = jobs

        points: List[dict] = []

        def line_cb(line: dict) -> None:
            if line.get("event") == "point":
                points.append(line)
                if on_point is not None:
                    on_point(line)

        status, last = await self._request(
            "POST", "/v1/sweeps", body, on_line=line_cb if stream else None
        )
        if stream:
            if last is None or last.get("event") == "error":
                raise ServiceError(
                    (last or {}).get("status", status), last or {}
                )
            last = dict(last)
            # one event per sweep *task*; a batched lane chunk covers
            # several points and says so in its "points" field
            last["points_streamed"] = sum(
                p.get("points", 1) for p in points
            )
            return last
        if status != 200:
            raise ServiceError(status, last)
        return last


async def _read_chunked_lines(reader: asyncio.StreamReader) -> List[bytes]:
    """Decode a chunked body and split it into NDJSON lines."""
    buf = bytearray()
    while True:
        size_line = await reader.readline()
        try:
            size = int(size_line.strip().split(b";")[0], 16)
        except ValueError:
            break
        if size == 0:
            await reader.readline()  # trailing CRLF
            break
        buf += await reader.readexactly(size)
        await reader.readexactly(2)  # chunk CRLF
    return [line for line in bytes(buf).splitlines() if line.strip()]


async def wait_ready(
    host: str, port: int, timeout: float = 30.0
) -> "ServiceClient":
    """Poll ``/healthz`` until the server answers (or raise TimeoutError)."""
    client = ServiceClient(host, port)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if await client.health():
            return client
        await asyncio.sleep(0.1)
    raise TimeoutError(
        f"repro.service at {host}:{port} not ready after {timeout:g}s"
    )
