"""``python -m repro.service`` — run the sweep-as-a-service results server.

Example::

    python -m repro.service --port 8733 --cache-dir .repro-cache --jobs 2

The server prints one ready line (``repro.service listening on
http://HOST:PORT (cache: DIR)``) once bound — with ``--port 0`` the OS
picks a free port and the ready line is how callers learn it.  See
``docs/service.md`` for the HTTP API.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..experiments.resilient import RetryPolicy
from .server import serve


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Async experiment-results server with a "
        "content-addressed cache (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8733,
        help="TCP port (0 = let the OS pick; the ready line names it)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="content-addressed result store (created if missing)",
    )
    parser.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU cache budget in bytes (evict least-recently-used "
        "entries past this total; default: unbounded)",
    )
    parser.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="LRU cache budget in entries (default: unbounded)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="default worker processes per computation "
        "(None = serial; 0 = all cores; bit-identical either way)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=1, metavar="N",
        help="distinct fingerprints computing at once (identical "
        "requests always share one computation)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="resilient-runtime retries per sweep point",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point watchdog for the resilient runtime",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.max_concurrent < 1:
        parser.error("--max-concurrent must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.cache_max_bytes is not None and args.cache_max_bytes < 0:
        parser.error("--cache-max-bytes must be >= 0")
    if args.cache_max_entries is not None and args.cache_max_entries < 1:
        parser.error("--cache-max-entries must be >= 1")

    retry = RetryPolicy(
        max_attempts=args.retries + 1, timeout_s=args.task_timeout
    )
    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                args.cache_dir,
                jobs=args.jobs,
                retry=retry,
                max_concurrent=args.max_concurrent,
                cache_max_bytes=args.cache_max_bytes,
                cache_max_entries=args.cache_max_entries,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
