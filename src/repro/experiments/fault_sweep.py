"""Experiment ``fault_sweep`` — latency overhead vs number of faults.

Companion to Figures 7/8 (extension): the paper reports one operating
point ("in the presence of multiple faults"); this sweep varies the
number of simultaneously tolerated faults and traces how the latency
overhead accumulates.  The shape: near-linear growth at low fault counts
(independent +1-cycle penalties), super-linear once secondary-path mux
sharing starts interacting with congestion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..traffic.apps import app_profile
from .latency import QUICK_CONFIG, LatencyConfig, suite_schedule, suite_traffic
from .report import ExperimentResult, take_legacy
from .resilient import sweep_runtime

try:  # dataclasses.replace via the config helper
    from ..config import replace
except ImportError:  # pragma: no cover
    from dataclasses import replace


@dataclass(frozen=True)
class FaultSweepConfig:
    """Unified-API config of the fault-count sweep."""

    fault_counts: Optional[tuple[int, ...]] = None
    app: str = "ocean"
    latency: Optional[LatencyConfig] = None
    #: sweep execution engine: all fault counts share one structural key
    #: (same mesh, protected router, XY routing — only the fault
    #: schedule differs), so ``"batched"`` steps the whole sweep as
    #: lanes of one NumPy engine; ``"event"`` runs one fabric per point
    #: (bit-identical, for A/B timing)
    engine: str = "batched"


def run(
    config: Optional[FaultSweepConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`FaultSweepConfig`; the old
    ``run(fault_counts=..., app=..., cfg=...)`` keywords still work but
    are deprecated.  ``out_dir``/``resume`` attach the resilient runtime.
    """
    if legacy:
        take_legacy("fault_sweep", legacy, {"fault_counts", "app", "cfg"})
        base = config or FaultSweepConfig()
        config = FaultSweepConfig(
            fault_counts=tuple(legacy["fault_counts"])
            if legacy.get("fault_counts") is not None
            else base.fault_counts,
            app=legacy.get("app", base.app),
            latency=legacy.get("cfg", base.latency),
            engine=base.engine,
        )
    config = config or FaultSweepConfig()
    cfg = config.latency
    if seed is not None:
        cfg = replace(cfg or QUICK_CONFIG, seed=seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(
            config.fault_counts, config.app, cfg, jobs, config.engine
        )


def _run_experiment(
    fault_counts: Optional[Sequence[int]],
    app: str,
    cfg: LatencyConfig | None,
    jobs: Optional[int],
    engine: str = "batched",
) -> ExperimentResult:
    from .parallel import LanePoint, run_lane_sweep

    fault_counts = list(fault_counts or (0, 8, 16, 32, 64))
    if fault_counts[0] != 0:
        fault_counts = [0] + fault_counts
    cfg = cfg or QUICK_CONFIG
    profile = app_profile(app)
    net = cfg.network()
    sim_config = cfg.simulation()

    # one independent, fully seeded simulation per fault count — every
    # point shares the structural key, so the batched engine steps the
    # whole sweep as lanes; results reassemble in index order either way
    points = [
        LanePoint(
            config=net,
            sim_config=sim_config,
            make_traffic=suite_traffic,
            traffic_args=(net, profile.name, cfg.seed, cfg.rate_scale),
            make_schedule=suite_schedule if n > 0 else None,
            schedule_args=(
                (net, cfg.warmup_cycles, max(n, 1), cfg.seed)
                if n > 0
                else ()
            ),
            router_kind="protected",
            label=f"{app}@{n}faults",
        )
        for n in fault_counts
    ]
    results, sweep_report = run_lane_sweep(points, jobs=jobs, engine=engine)

    base_latency = None
    rows: list[tuple[int, float]] = []
    for n, result in zip(fault_counts, results):
        if result.blocked:
            raise RuntimeError(
                f"{app}@{n}faults: network blocked — fault schedule "
                "should have been tolerable"
            )
        lat = result.avg_network_latency
        if n == 0:
            base_latency = lat
        rows.append((n, lat))
    assert base_latency is not None

    res = ExperimentResult(
        "fault_sweep",
        f"latency overhead vs tolerated-fault count — {app} (extension)",
    )
    overheads = []
    for n, lat in rows:
        ovh = lat / base_latency - 1.0
        overheads.append(ovh)
        res.add(
            f"latency @ {n} faults", round(lat, 2), None, unit="cycles"
        )
        if n:
            res.add(f"overhead @ {n} faults", round(ovh, 4), None)
    res.add(
        "overhead non-decreasing in fault count",
        all(b >= a - 0.015 for a, b in zip(overheads, overheads[1:])),
        True,
        note="small non-monotonic wiggle allowed: fault placement is random",
    )
    res.add(
        "zero faults costs nothing",
        overheads[0] == 0.0,
        True,
    )
    res.extras["rows"] = rows
    res.extras["sweep"] = sweep_report
    from .charts import curve

    res.extras["chart"] = curve(
        [float(n) for n, _ in rows],
        [lat for _, lat in rows],
        x_label="faults",
        y_label="latency",
    )
    return res
