"""Experiment ``fault_sweep`` — latency overhead vs number of faults.

Companion to Figures 7/8 (extension): the paper reports one operating
point ("in the presence of multiple faults"); this sweep varies the
number of simultaneously tolerated faults and traces how the latency
overhead accumulates.  The shape: near-linear growth at low fault counts
(independent +1-cycle penalties), super-linear once secondary-path mux
sharing starts interacting with congestion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..traffic.apps import app_profile
from .latency import LatencyConfig, QUICK_CONFIG, run_app
from .report import ExperimentResult

try:  # dataclasses.replace via the config helper
    from ..config import replace
except ImportError:  # pragma: no cover
    from dataclasses import replace


def run(
    fault_counts: Optional[Sequence[int]] = None,
    app: str = "ocean",
    cfg: LatencyConfig | None = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    from .parallel import SweepTask, run_sweep

    fault_counts = list(fault_counts or (0, 8, 16, 32, 64))
    if fault_counts[0] != 0:
        fault_counts = [0] + fault_counts
    cfg = cfg or QUICK_CONFIG
    profile = app_profile(app)

    # one independent, fully seeded simulation per fault count — the
    # engine reassembles in index order, so parallel == serial
    tasks = [
        SweepTask(
            index=i,
            fn=run_app,
            args=(profile, replace(cfg, num_faults=max(n, 1))),
            kwargs={"faulty": n > 0},
            label=f"{app}@{n}faults",
        )
        for i, n in enumerate(fault_counts)
    ]
    results, sweep_report = run_sweep(tasks, jobs=jobs)

    base_latency = None
    rows: list[tuple[int, float]] = []
    for n, result in zip(fault_counts, results):
        lat = result.avg_network_latency
        if n == 0:
            base_latency = lat
        rows.append((n, lat))
    assert base_latency is not None

    res = ExperimentResult(
        "fault_sweep",
        f"latency overhead vs tolerated-fault count — {app} (extension)",
    )
    overheads = []
    for n, lat in rows:
        ovh = lat / base_latency - 1.0
        overheads.append(ovh)
        res.add(
            f"latency @ {n} faults", round(lat, 2), None, unit="cycles"
        )
        if n:
            res.add(f"overhead @ {n} faults", round(ovh, 4), None)
    res.add(
        "overhead non-decreasing in fault count",
        all(b >= a - 0.015 for a, b in zip(overheads, overheads[1:])),
        True,
        note="small non-monotonic wiggle allowed: fault placement is random",
    )
    res.add(
        "zero faults costs nothing",
        overheads[0] == 0.0,
        True,
    )
    res.extras["rows"] = rows
    res.extras["sweep"] = sweep_report
    from .charts import curve

    res.extras["chart"] = curve(
        [float(n) for n, _ in rows],
        [lat for _, lat in rows],
        x_label="faults",
        y_label="latency",
    )
    return res
