"""Experiment ``table1`` — paper Table I: FIT of the baseline pipeline.

Reproduces the per-stage FIT values of the 5x5, 4-VC router in an 8x8
mesh from the FORC/TDDB model and the component inventories.

Note: the paper's VA row prints 1478, but its own component census
(100 x 7.4 + 20 x 36.7) evaluates to 1474; we report against the printed
value and flag the discrepancy.
"""

from __future__ import annotations

from typing import Optional

from ..reliability.stages import RouterGeometry, baseline_stages, total_fit
from .report import ExperimentResult, coerce_geom

#: Values as printed in the paper's Table I.
PAPER_TABLE1 = {"RC": 117.0, "VA": 1478.0, "SA": 203.0, "XB": 1024.0}
PAPER_TOTAL = 2822.0

#: Paper Table I per-component FIT values.
PAPER_COMPONENT_FITS = {
    "6-bit comparator": 11.7,
    "4:1 arbiter": 7.4,
    "20:1 arbiter": 36.7,
    "1-bit 4:1 mux": 4.8,
    "5:1 arbiter": 9.3,
    "32-bit 5:1 mux": 204.8,
}


def run(
    config: Optional[RouterGeometry] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`~repro.reliability.stages.RouterGeometry`;
    the old ``run(geom=...)`` keyword still works but is deprecated.
    The analysis is closed-form, so ``jobs``/``seed``/``out_dir``/
    ``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    geom = coerce_geom("table1", config, legacy) or RouterGeometry()
    stages = baseline_stages(geom)
    res = ExperimentResult(
        "table1", "FIT values of baseline pipeline stages (per 1e9 h)"
    )
    # per-component sanity rows
    from ..reliability.components import arbiter, comparator, mux

    comps = {
        "6-bit comparator": comparator(6),
        "4:1 arbiter": arbiter(4),
        "20:1 arbiter": arbiter(20),
        "1-bit 4:1 mux": mux(4, 1),
        "5:1 arbiter": arbiter(5),
        "32-bit 5:1 mux": mux(5, 32),
    }
    for name, comp in comps.items():
        res.add(f"FIT({name})", round(comp.fit(), 2), PAPER_COMPONENT_FITS[name])
    for stage, inv in stages.items():
        note = ""
        if stage == "VA":
            note = (
                "paper prints 1478 but its own census (100x7.4 + 20x36.7) "
                "gives 1474"
            )
        res.add(f"FIT({stage} stage)", round(inv.fit(), 1), PAPER_TABLE1[stage],
                note=note)
    res.add("FIT(total pipeline)", round(total_fit(stages), 1), PAPER_TOTAL)
    res.extras["stages"] = stages
    return res
