"""Experiment ``table3`` — paper Table III: SPF comparison.

BulletProof 2.07 @ 52 %, Vicis 6.55 @ 42 %, RoCo < 5.5, proposed 11.4 @
31 %.  Also reports the Monte-Carlo faults-to-failure distribution of the
proposed router (the paper uses the min/max average convention; the MC
mean under uniformly random fault placement is lower — both shown).
"""

from __future__ import annotations

from ..comparison.spf_table import build_spf_table, proposed_router_wins
from ..config import RouterConfig
from ..reliability.spf import monte_carlo_faults_to_failure
from .report import ExperimentResult

PAPER_ROWS = {
    "BulletProof": (0.52, 3.15, 2.07),
    "Vicis": (0.42, 9.3, 6.55),
    "RoCo": (None, 5.5, 5.5),
    "Proposed Router": (0.31, 15.0, 11.4),
}


def run(
    config: RouterConfig | None = None,
    mc_trials: int = 1000,
    seed: int = 1,
    jobs: int | None = None,
) -> ExperimentResult:
    config = config or RouterConfig()
    rows = build_spf_table(config)
    res = ExperimentResult("table3", "SPF comparison (Table III)")
    for row in rows:
        p_area, p_faults, p_spf = PAPER_ROWS[row.architecture]
        if row.area_overhead is not None:
            res.add(
                f"{row.architecture}: area overhead",
                round(row.area_overhead, 3),
                p_area,
            )
        res.add(
            f"{row.architecture}: faults to failure",
            round(row.mean_faults_to_failure, 2),
            p_faults,
        )
        res.add(
            f"{row.architecture}: SPF",
            round(row.spf, 2),
            p_spf,
            note="paper reports an upper bound (<5.5)"
            if row.spf_is_upper_bound
            else "",
        )
    res.add(
        "proposed router has highest SPF",
        proposed_router_wins(rows),
        True,
    )
    mc = monte_carlo_faults_to_failure(
        config, trials=mc_trials, rng=seed, jobs=jobs
    )
    res.add(
        "proposed: MC mean faults to failure",
        round(mc.mean, 2),
        None,
        note="uniformly random fault placement; the paper's 15 is the "
        "average of min (2) and max (28)",
    )
    res.add("proposed: MC min faults", mc.minimum, 2)
    res.extras["rows"] = rows
    res.extras["mc"] = mc
    res.extras["sweep"] = mc.sweep
    return res
