"""Experiment ``table3`` — paper Table III: SPF comparison.

BulletProof 2.07 @ 52 %, Vicis 6.55 @ 42 %, RoCo < 5.5, proposed 11.4 @
31 %.  Also reports the Monte-Carlo faults-to-failure distribution of the
proposed router (the paper uses the min/max average convention; the MC
mean under uniformly random fault placement is lower — both shown).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..comparison.spf_table import build_spf_table, proposed_router_wins
from ..config import RouterConfig
from ..reliability.spf import monte_carlo_faults_to_failure
from .report import ExperimentResult, override_seed, take_legacy
from .resilient import sweep_runtime


@dataclass(frozen=True)
class Table3Config:
    """Unified-API config of the Table III reproduction."""

    router: Optional[RouterConfig] = None
    mc_trials: int = 1000
    seed: int = 1

PAPER_ROWS = {
    "BulletProof": (0.52, 3.15, 2.07),
    "Vicis": (0.42, 9.3, 6.55),
    "RoCo": (None, 5.5, 5.5),
    "Proposed Router": (0.31, 15.0, 11.4),
}


def run(
    config: "Table3Config | RouterConfig | None" = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`Table3Config` (a bare
    :class:`~repro.config.RouterConfig` is accepted for compatibility);
    the old ``run(mc_trials=...)`` keyword still works but is
    deprecated.  ``out_dir``/``resume`` attach the resilient runtime.
    """
    if isinstance(config, RouterConfig):
        config = Table3Config(router=config)
    if legacy:
        take_legacy("table3", legacy, {"mc_trials"})
        config = replace(config or Table3Config(), **legacy)
    config = override_seed(config or Table3Config(), seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(config, jobs)


def _run_experiment(config: Table3Config, jobs: Optional[int]) -> ExperimentResult:
    router = config.router or RouterConfig()
    mc_trials, seed = config.mc_trials, config.seed
    rows = build_spf_table(router)
    res = ExperimentResult("table3", "SPF comparison (Table III)")
    for row in rows:
        p_area, p_faults, p_spf = PAPER_ROWS[row.architecture]
        if row.area_overhead is not None:
            res.add(
                f"{row.architecture}: area overhead",
                round(row.area_overhead, 3),
                p_area,
            )
        res.add(
            f"{row.architecture}: faults to failure",
            round(row.mean_faults_to_failure, 2),
            p_faults,
        )
        res.add(
            f"{row.architecture}: SPF",
            round(row.spf, 2),
            p_spf,
            note="paper reports an upper bound (<5.5)"
            if row.spf_is_upper_bound
            else "",
        )
    res.add(
        "proposed router has highest SPF",
        proposed_router_wins(rows),
        True,
    )
    mc = monte_carlo_faults_to_failure(
        router, trials=mc_trials, rng=seed, jobs=jobs
    )
    res.add(
        "proposed: MC mean faults to failure",
        round(mc.mean, 2),
        None,
        note="uniformly random fault placement; the paper's 15 is the "
        "average of min (2) and max (28)",
    )
    res.add("proposed: MC min faults", mc.minimum, 2)
    res.extras["rows"] = rows
    res.extras["mc"] = mc
    res.extras["sweep"] = mc.sweep
    return res
