"""``python -m repro.experiments`` entry point.

See :mod:`repro.experiments.runner` for the CLI surface, including the
observability flags ``--metrics-out``, ``--trace-out``, and ``--profile``.
Exits non-zero when any experiment fails, including failures raised
inside parallel worker shards.
"""

import sys

from .runner import main

sys.exit(main())
