"""Experiment ``design_space`` — router provisioning exploration (extension).

Sweeps the two sizing knobs the paper fixes (4 VCs, 4-flit buffers) and
reports their three-way trade-off:

* performance — fault-free latency at a reference load,
* reliability — SPF (more VCs = more inherent redundancy to share),
* cost — area overhead of the correction circuitry (relatively smaller
  in bigger routers).

The paper's Section VIII-E covers the SPF column of this table; the
performance and cost columns complete the designer's picture.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..config import NetworkConfig, RouterConfig, SimulationConfig
from ..reliability.spf import analyze_spf
from ..reliability.stages import RouterGeometry
from ..synthesis.area import area_overhead
from ..traffic.generator import SyntheticTraffic
from .report import ExperimentResult, override_seed, take_legacy
from .resilient import sweep_runtime


@dataclass(frozen=True)
class DesignSpaceConfig:
    """Unified-API config of the VC/buffer provisioning grid."""

    vc_counts: tuple[int, ...] = (2, 4, 8)
    buffer_depths: tuple[int, ...] = (2, 4, 8)
    rate: float = 0.15
    seed: int = 1
    measure: int = 2000
    #: sweep execution engine.  The grid's points are structurally
    #: *distinct* (each sizes the router differently), so the batched
    #: lane engine declines every one-point group and the sweep runs on
    #: the per-point event engine either way — routing it through
    #: :func:`repro.experiments.parallel.run_lane_sweep` anyway keeps
    #: one code path and surfaces the decline reasons in the report.
    engine: str = "batched"


def _grid_traffic(
    net: NetworkConfig, rate: float, seed: int
) -> SyntheticTraffic:
    """Traffic factory for one grid point (module-level → picklable)."""
    return SyntheticTraffic(net, injection_rate=rate, rng=seed)


def run(
    config: Optional[DesignSpaceConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`DesignSpaceConfig`; the old
    ``run(vc_counts=..., buffer_depths=..., ...)`` keywords still work
    but are deprecated.  ``out_dir``/``resume`` attach the resilient
    sweep runtime.
    """
    if legacy:
        take_legacy(
            "design_space", legacy,
            {"vc_counts", "buffer_depths", "rate", "measure", "engine"},
        )
        for key in ("vc_counts", "buffer_depths"):
            if legacy.get(key) is not None:
                legacy[key] = tuple(legacy[key])
        config = replace(config or DesignSpaceConfig(), **legacy)
    config = override_seed(config or DesignSpaceConfig(), seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(config, jobs)


def _run_experiment(
    config: DesignSpaceConfig, jobs: Optional[int]
) -> ExperimentResult:
    from .parallel import LanePoint, run_lane_sweep

    vc_counts = list(config.vc_counts)
    buffer_depths = list(config.buffer_depths)
    rate, seed, measure = config.rate, config.seed, config.measure
    res = ExperimentResult(
        "design_space",
        "VC/buffer provisioning: latency x SPF x area (extension)",
    )
    # the simulation grid is the expensive part: one engine point per
    # (VC count, buffer depth); the SPF/area columns stay analytic
    grid = [(v, d) for v in vc_counts for d in buffer_depths]
    sim_config = SimulationConfig(
        warmup_cycles=400, measure_cycles=measure, drain_cycles=4000,
        seed=seed,
    )
    points = []
    for v, d in grid:
        net = NetworkConfig(
            width=4, height=4,
            router=RouterConfig(num_vcs=v, buffer_depth=d),
        )
        points.append(
            LanePoint(
                config=net,
                sim_config=sim_config,
                make_traffic=_grid_traffic,
                traffic_args=(net, rate, seed),
                router_kind="protected",
                label=f"{v}vc-{d}deep",
            )
        )
    values, sweep_report = run_lane_sweep(
        points, jobs=jobs, engine=config.engine
    )
    lat_by_point = dict(zip(grid, (r.avg_network_latency for r in values)))
    points = {}
    for v in vc_counts:
        geom = RouterGeometry(num_vcs=v)
        ovh = area_overhead(geom)
        spf = analyze_spf(ovh, RouterConfig(num_vcs=v)).spf
        for d in buffer_depths:
            lat = lat_by_point[(v, d)]
            points[(v, d)] = (lat, spf, ovh)
            res.add(
                f"latency @ {v} VCs, depth {d}", round(lat, 2), None,
                unit="cycles",
            )
        res.add(f"SPF @ {v} VCs", round(spf, 2), None)
        res.add(f"area overhead @ {v} VCs", round(ovh, 3), None)

    # shape assertions the table must exhibit
    vmin, vmax = min(vc_counts), max(vc_counts)
    dmin, dmax = min(buffer_depths), max(buffer_depths)
    res.add(
        "deeper buffers never hurt latency",
        all(
            points[(v, dmax)][0] <= points[(v, dmin)][0] + 0.5
            for v in vc_counts
        ),
        True,
    )
    res.add(
        "more VCs raise SPF",
        points[(vmax, dmin)][1] > points[(vmin, dmin)][1],
        True,
    )
    res.add(
        "bigger routers dilute the correction-area overhead",
        points[(vmax, dmin)][2] < points[(vmin, dmin)][2],
        True,
    )
    res.extras["points"] = points
    res.extras["sweep"] = sweep_report
    return res
