"""Experiment ``table2`` — paper Table II: FIT of the correction circuitry."""

from __future__ import annotations

from typing import Optional

from ..reliability.stages import RouterGeometry, correction_stages, total_fit
from .report import ExperimentResult, coerce_geom

#: Values as printed in the paper's Table II.
PAPER_TABLE2 = {"RC": 117.0, "VA": 60.0, "SA": 53.0, "XB": 416.0}
PAPER_TOTAL = 646.0


def run(
    config: Optional[RouterGeometry] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`~repro.reliability.stages.RouterGeometry`;
    the old ``run(geom=...)`` keyword still works but is deprecated.
    The analysis is closed-form, so ``jobs``/``seed``/``out_dir``/
    ``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    geom = coerce_geom("table2", config, legacy) or RouterGeometry()
    stages = correction_stages(geom)
    res = ExperimentResult(
        "table2", "FIT rates of the correction circuitry (per 1e9 h)"
    )
    for stage, inv in stages.items():
        res.add(f"FIT({stage} correction)", round(inv.fit(), 1), PAPER_TABLE2[stage])
    res.add("FIT(total correction)", round(total_fit(stages), 1), PAPER_TOTAL)
    res.extras["stages"] = stages
    return res
