"""Experiment ``table2`` — paper Table II: FIT of the correction circuitry."""

from __future__ import annotations

from ..reliability.stages import RouterGeometry, correction_stages, total_fit
from .report import ExperimentResult

#: Values as printed in the paper's Table II.
PAPER_TABLE2 = {"RC": 117.0, "VA": 60.0, "SA": 53.0, "XB": 416.0}
PAPER_TOTAL = 646.0


def run(geom: RouterGeometry | None = None) -> ExperimentResult:
    geom = geom or RouterGeometry()
    stages = correction_stages(geom)
    res = ExperimentResult(
        "table2", "FIT rates of the correction circuitry (per 1e9 h)"
    )
    for stage, inv in stages.items():
        res.add(f"FIT({stage} correction)", round(inv.fit(), 1), PAPER_TABLE2[stage])
    res.add("FIT(total correction)", round(total_fit(stages), 1), PAPER_TOTAL)
    res.extras["stages"] = stages
    return res
