"""Experiment ``mttf`` — paper Section VII, Equations 4-7.

Baseline MTTF ~354,358 h; protected MTTF ~2,190,696 h (paper Eq. 5);
improvement ~6x.  Also reports the textbook E[max] formula and a
Monte-Carlo cross-check (see :mod:`repro.reliability.mttf` for why the
two differ).
"""

from __future__ import annotations

from ..reliability.mttf import analyze_mttf, monte_carlo_mttf
from ..reliability.stages import RouterGeometry
from .report import ExperimentResult

PAPER_MTTF_BASELINE = 354_358.0
PAPER_MTTF_PROTECTED = 2_190_696.0
PAPER_IMPROVEMENT = 6.0


def run(
    geom: RouterGeometry | None = None,
    mc_samples: int = 100_000,
    seed: int = 1,
) -> ExperimentResult:
    geom = geom or RouterGeometry()
    rep = analyze_mttf(geom)
    res = ExperimentResult("mttf", "MTTF analysis (Equations 4-7)")
    res.add("baseline pipeline FIT", round(rep.baseline_fit, 1), 2822.0)
    res.add("correction circuitry FIT", round(rep.correction_fit, 1), 646.0)
    res.add(
        "MTTF baseline", round(rep.mttf_baseline_hours), PAPER_MTTF_BASELINE,
        unit="h",
    )
    res.add(
        "MTTF protected (paper Eq.5)",
        round(rep.mttf_protected_hours),
        PAPER_MTTF_PROTECTED,
        unit="h",
    )
    res.add(
        "reliability improvement (paper)",
        round(rep.improvement, 2),
        PAPER_IMPROVEMENT,
    )
    mc = monte_carlo_mttf(
        rep.baseline_fit, rep.correction_fit, samples=mc_samples, rng=seed
    )
    res.add(
        "MTTF protected (exact E[max] formula)",
        round(rep.mttf_protected_exact_hours),
        None,
        unit="h",
        note="textbook expected-max of two exponentials: "
        "1/l1 + 1/l2 - 1/(l1+l2); the paper's Eq. 5 uses '+'",
    )
    res.add(
        "MTTF protected (Monte-Carlo E[max])", round(mc), None, unit="h",
        note=f"{mc_samples} sampled lifetimes; validates the exact formula",
    )
    res.add(
        "reliability improvement (exact)",
        round(rep.improvement_exact, 2),
        None,
    )
    res.extras["report"] = rep
    return res
