"""Experiment ``mttf`` — paper Section VII, Equations 4-7.

Baseline MTTF ~354,358 h; protected MTTF ~2,190,696 h (paper Eq. 5);
improvement ~6x.  Also reports the textbook E[max] formula and a
Monte-Carlo cross-check (see :mod:`repro.reliability.mttf` for why the
two differ).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..reliability.mttf import analyze_mttf, monte_carlo_mttf
from ..reliability.stages import RouterGeometry
from .report import ExperimentResult, override_seed, take_legacy

PAPER_MTTF_BASELINE = 354_358.0
PAPER_MTTF_PROTECTED = 2_190_696.0
PAPER_IMPROVEMENT = 6.0


@dataclass(frozen=True)
class MTTFConfig:
    """Unified-API config of the MTTF analysis."""

    geom: Optional[RouterGeometry] = None
    mc_samples: int = 100_000
    seed: int = 1


def run(
    config: "MTTFConfig | RouterGeometry | None" = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is an :class:`MTTFConfig` (a bare
    :class:`~repro.reliability.stages.RouterGeometry` is accepted for
    compatibility); the old ``run(geom=..., mc_samples=...)`` keywords
    still work but are deprecated.  The analysis is closed-form plus a
    vectorised Monte Carlo, so ``jobs``/``out_dir``/``resume`` are
    accepted for API uniformity and ignored.
    """
    del jobs, out_dir, resume  # no sweep: nothing to parallelise/checkpoint
    if isinstance(config, RouterGeometry):
        config = MTTFConfig(geom=config)
    if legacy:
        take_legacy("mttf", legacy, {"geom", "mc_samples"})
        config = replace(config or MTTFConfig(), **legacy)
    config = override_seed(config or MTTFConfig(), seed)
    return _run_experiment(config)


def _run_experiment(config: MTTFConfig) -> ExperimentResult:
    geom = config.geom or RouterGeometry()
    mc_samples, seed = config.mc_samples, config.seed
    rep = analyze_mttf(geom)
    res = ExperimentResult("mttf", "MTTF analysis (Equations 4-7)")
    res.add("baseline pipeline FIT", round(rep.baseline_fit, 1), 2822.0)
    res.add("correction circuitry FIT", round(rep.correction_fit, 1), 646.0)
    res.add(
        "MTTF baseline", round(rep.mttf_baseline_hours), PAPER_MTTF_BASELINE,
        unit="h",
    )
    res.add(
        "MTTF protected (paper Eq.5)",
        round(rep.mttf_protected_hours),
        PAPER_MTTF_PROTECTED,
        unit="h",
    )
    res.add(
        "reliability improvement (paper)",
        round(rep.improvement, 2),
        PAPER_IMPROVEMENT,
    )
    mc = monte_carlo_mttf(
        rep.baseline_fit, rep.correction_fit, samples=mc_samples, rng=seed
    )
    res.add(
        "MTTF protected (exact E[max] formula)",
        round(rep.mttf_protected_exact_hours),
        None,
        unit="h",
        note="textbook expected-max of two exponentials: "
        "1/l1 + 1/l2 - 1/(l1+l2); the paper's Eq. 5 uses '+'",
    )
    res.add(
        "MTTF protected (Monte-Carlo E[max])", round(mc), None, unit="h",
        note=f"{mc_samples} sampled lifetimes; validates the exact formula",
    )
    res.add(
        "reliability improvement (exact)",
        round(rep.improvement_exact, 2),
        None,
    )
    res.extras["report"] = rep
    return res
