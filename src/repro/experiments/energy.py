"""Experiment ``energy`` — per-flit energy, fault-free vs faulty (extension).

Prices the simulator's event counters with the 45 nm per-event energy
model: tolerated faults cost energy (secondary-path demux charges, VC
transfer re-writes, duplicate RC computations) on top of the latency the
paper reports.  The headline shape: the energy-per-flit overhead under
the Figure 7/8 fault regime stays in the single-digit percent range —
cheaper than the latency overhead, because only fault-adjacent flits pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..synthesis.energy import EnergyModel, energy_of_run
from ..traffic.apps import app_profile
from .latency import QUICK_CONFIG, LatencyConfig, run_app
from .report import ExperimentResult, override_seed, take_legacy


@dataclass(frozen=True)
class EnergyConfig:
    """Unified-API config of the per-flit energy experiment."""

    app: str = "ocean"
    latency: Optional[LatencyConfig] = None
    model: Optional[EnergyModel] = None


def run(
    config: Optional[EnergyConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is an :class:`EnergyConfig`; the old ``run(app=...,
    cfg=..., model=...)`` keywords still work but are deprecated.  The
    experiment is a fault-free/faulty pair of serial simulations, so
    ``jobs``/``out_dir``/``resume`` are accepted for API uniformity and
    ignored.
    """
    del jobs, out_dir, resume  # two serial runs: nothing to shard
    if legacy:
        take_legacy("energy", legacy, {"app", "cfg", "model"})
        base = config or EnergyConfig()
        config = EnergyConfig(
            app=legacy.get("app", base.app),
            latency=legacy.get("cfg", base.latency),
            model=legacy.get("model", base.model),
        )
    config = config or EnergyConfig()
    return _run_experiment(config, seed)


def _run_experiment(
    config: EnergyConfig, seed: Optional[int]
) -> ExperimentResult:
    app = config.app
    cfg = override_seed(config.latency or QUICK_CONFIG, seed)
    model = config.model or EnergyModel()
    profile = app_profile(app)
    ff = run_app(profile, cfg, faulty=False)
    fy = run_app(profile, cfg, faulty=True)
    e_ff = energy_of_run(ff, model)
    e_fy = energy_of_run(fy, model)

    res = ExperimentResult(
        "energy", f"per-flit energy under faults — {app} (extension)"
    )
    res.add("fault-free energy/flit", round(e_ff.pj_per_flit, 3), None, unit="pJ")
    res.add("faulty energy/flit", round(e_fy.pj_per_flit, 3), None, unit="pJ")
    overhead = e_fy.pj_per_flit / e_ff.pj_per_flit - 1.0
    res.add("energy/flit overhead", round(overhead, 4), None)
    for key in ("secondary_path", "vc_transfers"):
        res.add(
            f"fault-only energy: {key}",
            round(e_fy.breakdown_pj[key], 1),
            None,
            unit="pJ",
            note="zero in the fault-free run" if e_ff.breakdown_pj[key] == 0 else "",
        )
    res.add(
        "energy overhead below latency overhead",
        overhead
        <= (fy.avg_network_latency / ff.avg_network_latency - 1.0) + 0.02,
        True,
        note="only fault-adjacent flits pay energy; every flit queues",
    )
    res.extras["fault_free"] = e_ff
    res.extras["faulty"] = e_fy
    return res
