"""Experiment ``energy`` — per-flit energy, fault-free vs faulty (extension).

Prices the simulator's event counters with the 45 nm per-event energy
model: tolerated faults cost energy (secondary-path demux charges, VC
transfer re-writes, duplicate RC computations) on top of the latency the
paper reports.  The headline shape: the energy-per-flit overhead under
the Figure 7/8 fault regime stays in the single-digit percent range —
cheaper than the latency overhead, because only fault-adjacent flits pay.
"""

from __future__ import annotations

from ..synthesis.energy import EnergyModel, energy_of_run
from ..traffic.apps import app_profile
from .latency import LatencyConfig, QUICK_CONFIG, run_app
from .report import ExperimentResult


def run(
    app: str = "ocean",
    cfg: LatencyConfig | None = None,
    model: EnergyModel | None = None,
) -> ExperimentResult:
    cfg = cfg or QUICK_CONFIG
    model = model or EnergyModel()
    profile = app_profile(app)
    ff = run_app(profile, cfg, faulty=False)
    fy = run_app(profile, cfg, faulty=True)
    e_ff = energy_of_run(ff, model)
    e_fy = energy_of_run(fy, model)

    res = ExperimentResult(
        "energy", f"per-flit energy under faults — {app} (extension)"
    )
    res.add("fault-free energy/flit", round(e_ff.pj_per_flit, 3), None, unit="pJ")
    res.add("faulty energy/flit", round(e_fy.pj_per_flit, 3), None, unit="pJ")
    overhead = e_fy.pj_per_flit / e_ff.pj_per_flit - 1.0
    res.add("energy/flit overhead", round(overhead, 4), None)
    for key in ("secondary_path", "vc_transfers"):
        res.add(
            f"fault-only energy: {key}",
            round(e_fy.breakdown_pj[key], 1),
            None,
            unit="pJ",
            note="zero in the fault-free run" if e_ff.breakdown_pj[key] == 0 else "",
        )
    res.add(
        "energy overhead below latency overhead",
        overhead
        <= (fy.avg_network_latency / ff.avg_network_latency - 1.0) + 0.02,
        True,
        note="only fault-adjacent flits pay energy; every flit queues",
    )
    res.extras["fault_free"] = e_ff
    res.extras["faulty"] = e_fy
    return res
