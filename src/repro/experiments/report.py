"""Shared experiment-result container and paper-vs-measured formatting.

Also home to the two helpers every unified experiment entry point uses
(see ``docs/resilience.md#unified-run-api``): legacy-keyword deprecation
(:func:`take_legacy`) and the ``seed=`` override (:func:`override_seed`).
They live here — the one module all experiment modules already import —
so the entry points need no new import edges.
"""

from __future__ import annotations

import dataclasses
import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Optional


def take_legacy(module: str, legacy: dict, allowed: "set[str]") -> dict:
    """Validate and deprecation-warn the old per-module ``run()`` keywords.

    The unified signature is ``run(config, *, jobs=None, seed=None,
    out_dir=None, resume=None)``; anything else lands in ``**legacy``.
    Recognised legacy keywords still work (folded into the config by the
    caller) but emit a :class:`DeprecationWarning`; unknown ones raise
    ``TypeError`` like any misspelled keyword would.  The legacy spellings
    are scheduled for removal in 2.0.
    """
    unknown = set(legacy) - allowed
    if unknown:
        raise TypeError(
            f"{module}.run() got unexpected keyword argument(s): "
            f"{sorted(unknown)}"
        )
    warnings.warn(
        f"{module}.run({', '.join(sorted(legacy))}=...) uses the deprecated "
        f"per-module signature; pass a config object as the first argument "
        f"instead (unified API: run(config, *, jobs=None, seed=None, "
        f"out_dir=None, resume=None) — see docs/resilience.md). "
        f"Legacy keywords will be removed in 2.0.",
        DeprecationWarning,
        stacklevel=3,
    )
    return legacy


def override_seed(config: Any, seed: Optional[int]) -> Any:
    """Apply the unified API's ``seed=`` override to a config object.

    Returns ``config`` with its ``seed`` field replaced when the config
    is a dataclass that has one and ``seed`` is not None; otherwise the
    config unchanged (analytic experiments have no randomness to seed).
    """
    if seed is None or config is None:
        return config
    if dataclasses.is_dataclass(config) and any(
        f.name == "seed" for f in dataclasses.fields(config)
    ):
        return dataclasses.replace(config, seed=seed)
    return config


def coerce_geom(module: str, config: Any, legacy: dict) -> Any:
    """Normalise the config of the geometry-only analytic experiments.

    These experiments (table1/table2/area_power/critical_path) take a
    :class:`~repro.reliability.stages.RouterGeometry` as their whole
    config; the old ``run(geom=...)`` keyword folds into it.
    """
    if legacy:
        take_legacy(module, legacy, {"geom"})
        if config is None:
            config = legacy.get("geom")
    return config


@dataclass
class Row:
    """One reported quantity: measured value vs the paper's value."""

    label: str
    measured: Any
    paper: Any = None
    unit: str = ""
    note: str = ""

    def relative_error(self) -> Optional[float]:
        """|measured - paper| / |paper| when both are numeric."""
        try:
            m = float(self.measured)
            p = float(self.paper)
        except (TypeError, ValueError):
            return None
        if not math.isfinite(m) or not math.isfinite(p) or p == 0:
            return None
        return abs(m - p) / abs(p)

    def format(self, width: int = 38) -> str:
        def fmt(v):
            if v is None:
                return "—"
            if isinstance(v, float):
                return f"{v:,.2f}" if abs(v) < 1e5 else f"{v:,.0f}"
            return str(v)

        rel = self.relative_error()
        relstr = f"  ({rel:+.1%} vs paper)".replace("+", "Δ") if rel is not None else ""
        unit = f" {self.unit}" if self.unit else ""
        line = (
            f"  {self.label:<{width}} measured={fmt(self.measured)}{unit}"
            f"  paper={fmt(self.paper)}{unit}{relstr}"
        )
        if self.note:
            line += f"\n      note: {self.note}"
        return line


@dataclass
class ExperimentResult:
    """Outcome of one experiment (table or figure reproduction)."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def add(
        self,
        label: str,
        measured: Any,
        paper: Any = None,
        unit: str = "",
        note: str = "",
    ) -> None:
        self.rows.append(Row(label, measured, paper, unit, note))

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)

    def format(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.extend(r.format() for r in self.rows)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())

    def max_relative_error(self) -> float:
        """Largest relative error among numeric rows (nan if none)."""
        errs = [r.relative_error() for r in self.rows]
        errs = [e for e in errs if e is not None]
        return max(errs) if errs else float("nan")
