"""Shared experiment-result container and paper-vs-measured formatting."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Row:
    """One reported quantity: measured value vs the paper's value."""

    label: str
    measured: Any
    paper: Any = None
    unit: str = ""
    note: str = ""

    def relative_error(self) -> Optional[float]:
        """|measured - paper| / |paper| when both are numeric."""
        try:
            m = float(self.measured)
            p = float(self.paper)
        except (TypeError, ValueError):
            return None
        if not math.isfinite(m) or not math.isfinite(p) or p == 0:
            return None
        return abs(m - p) / abs(p)

    def format(self, width: int = 38) -> str:
        def fmt(v):
            if v is None:
                return "—"
            if isinstance(v, float):
                return f"{v:,.2f}" if abs(v) < 1e5 else f"{v:,.0f}"
            return str(v)

        rel = self.relative_error()
        relstr = f"  ({rel:+.1%} vs paper)".replace("+", "Δ") if rel is not None else ""
        unit = f" {self.unit}" if self.unit else ""
        line = (
            f"  {self.label:<{width}} measured={fmt(self.measured)}{unit}"
            f"  paper={fmt(self.paper)}{unit}{relstr}"
        )
        if self.note:
            line += f"\n      note: {self.note}"
        return line


@dataclass
class ExperimentResult:
    """Outcome of one experiment (table or figure reproduction)."""

    experiment: str
    title: str
    rows: list[Row] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def add(
        self,
        label: str,
        measured: Any,
        paper: Any = None,
        unit: str = "",
        note: str = "",
    ) -> None:
        self.rows.append(Row(label, measured, paper, unit, note))

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(label)

    def format(self) -> str:
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.extend(r.format() for r in self.rows)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.format())

    def max_relative_error(self) -> float:
        """Largest relative error among numeric rows (nan if none)."""
        errs = [r.relative_error() for r in self.rows]
        errs = [e for e in errs if e is not None]
        return max(errs) if errs else float("nan")
