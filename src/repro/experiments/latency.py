"""Shared harness for the latency experiments (paper Section IX).

The paper simulates an 8x8 mesh in GEM5/GARNET, runs SPLASH-2 and PARSEC
traffic, and injects faults "based on a uniform random variable with a
mean of 10 million cycles".  The reproduction runs the same 8x8 mesh on
our simulator with the app surrogates and scales fault injection to the
Python-sized cycle budget: all faults are injected during warmup (uniform
random over the warmup window) so the measurement window observes the
steady-state latency of a network *tolerating* the faults — matching what
Figures 7/8 report.  Fault sites are drawn with ``avoid_failure=True``:
a failed router measures availability, not latency (see
:class:`repro.faults.injector.RandomFaultSchedule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..config import NetworkConfig, RouterConfig, SimulationConfig
from ..core.protected_router import protected_router_factory
from ..faults.injector import RandomFaultSchedule
from ..network import warm
from ..network.simulator import SimulationResult
from ..traffic.apps import AppProfile, make_app_traffic, suite_profiles
from .report import ExperimentResult


@dataclass(frozen=True)
class LatencyConfig:
    """Knobs of one Figure 7/8-style run."""

    width: int = 8
    height: int = 8
    num_vcs: int = 4
    num_vnets: int = 2
    buffer_depth: int = 4
    warmup_cycles: int = 2000
    measure_cycles: int = 8000
    drain_cycles: int = 8000
    num_faults: int = 224
    rate_scale: float = 1.0
    seed: int = 1

    def network(self) -> NetworkConfig:
        return NetworkConfig(
            width=self.width,
            height=self.height,
            router=RouterConfig(
                num_vcs=self.num_vcs,
                num_vnets=self.num_vnets,
                buffer_depth=self.buffer_depth,
            ),
        )

    def simulation(self) -> SimulationConfig:
        return SimulationConfig(
            warmup_cycles=self.warmup_cycles,
            measure_cycles=self.measure_cycles,
            drain_cycles=self.drain_cycles,
            seed=self.seed,
            watchdog_cycles=max(10_000, self.measure_cycles),
        )


#: Reduced configuration for tests and quick benches (4x4, ~2 tolerated
#: faults per router — the same density as the paper-scale run).
QUICK_CONFIG = LatencyConfig(
    width=4,
    height=4,
    warmup_cycles=500,
    measure_cycles=2500,
    drain_cycles=3000,
    num_faults=32,
)


@dataclass(frozen=True)
class SuiteRunConfig:
    """Unified-API config of the fig7/fig8 suite experiments.

    ``latency`` is the per-run knob set (``None`` → paper-scale
    :class:`LatencyConfig`); ``apps`` optionally restricts the suite to
    the named applications.
    """

    latency: Optional[LatencyConfig] = None
    apps: Optional[tuple[str, ...]] = None
    #: sweep execution engine: ``"batched"`` steps every (app,
    #: fault-state) point of the suite as lanes of one NumPy engine —
    #: they all share the 8x8 protected-router structural key — while
    #: ``"event"`` keeps one fabric per point (bit-identical, for A/B)
    engine: str = "batched"


def coerce_suite_config(
    module: str,
    config: "LatencyConfig | SuiteRunConfig | None",
    legacy: dict,
    seed: Optional[int],
) -> SuiteRunConfig:
    """Normalise a fig7/fig8 ``run()`` config (unified or legacy form)."""
    from .report import override_seed, take_legacy

    if legacy:
        take_legacy(module, legacy, {"cfg", "apps"})
        if config is None:
            config = legacy.get("cfg")
        apps = legacy.get("apps")
        if apps is not None:
            if isinstance(config, SuiteRunConfig):
                config = replace(config, apps=tuple(apps))
            else:
                config = SuiteRunConfig(latency=config, apps=tuple(apps))
    if config is None:
        config = SuiteRunConfig()
    elif isinstance(config, LatencyConfig):
        config = SuiteRunConfig(latency=config)
    if seed is not None:
        config = replace(
            config,
            latency=override_seed(config.latency or LatencyConfig(), seed),
        )
    return config


@dataclass
class AppLatency:
    """Fault-free vs faulty latency of one application."""

    app: str
    fault_free: float
    faulty: float
    fault_free_result: SimulationResult = field(repr=False, default=None)
    faulty_result: SimulationResult = field(repr=False, default=None)

    @property
    def overhead(self) -> float:
        """Relative latency increase caused by the tolerated faults."""
        return self.faulty / self.fault_free - 1.0


def suite_traffic(
    net: NetworkConfig, app: str, seed: int, rate_scale: float
):
    """Traffic factory for one suite point (module-level → picklable).

    Mirrors :func:`run_app`'s traffic construction exactly, so the lane
    sweep stays bit-identical to the per-point path.
    """
    return make_app_traffic(net, app, rng=seed, rate_scale=rate_scale)


def suite_schedule(
    net: NetworkConfig, warmup_cycles: int, num_faults: int, seed: int
) -> RandomFaultSchedule:
    """Fault-schedule factory for one suite point (module-level).

    All faults land during warmup so the measurement window sees the
    steady state — identical construction to :func:`run_app`'s faulty
    branch (uniform over ``[0, warmup)``, paper-style uniform gaps).
    """
    return RandomFaultSchedule(
        net.router,
        net.num_nodes,
        mean_interval=max(1.0, warmup_cycles / (2 * num_faults)),
        num_faults=num_faults,
        rng=seed + 7919,
        first_fault_at=0,
        avoid_failure=True,
    )


def run_app(
    profile: AppProfile,
    cfg: LatencyConfig,
    faulty: bool,
    seed_offset: int = 0,
) -> SimulationResult:
    """One simulation of one application, with or without faults."""
    net = cfg.network()
    seed = cfg.seed + seed_offset
    traffic = make_app_traffic(net, profile, rng=seed, rate_scale=cfg.rate_scale)
    schedule = None
    if faulty:
        # all faults land during warmup so the measurement window sees the
        # steady state (uniform over [0, warmup), paper-style uniform gaps)
        schedule = RandomFaultSchedule(
            net.router,
            net.num_nodes,
            mean_interval=max(1.0, cfg.warmup_cycles / (2 * cfg.num_faults)),
            num_faults=cfg.num_faults,
            rng=seed + 7919,
            first_fault_at=0,
            avoid_failure=True,
        )
    # warm pool: fig7/fig8 runs every (app, fault-state) pair on the same
    # 8x8 structural config, so workers reuse one fabric per process
    sim = warm.acquire(
        net,
        cfg.simulation(),
        traffic,
        router_factory=protected_router_factory(net),
        fault_schedule=schedule,
    )
    result = sim.run()
    if result.blocked:
        raise RuntimeError(
            f"{profile.name}: network blocked — fault schedule should have "
            "been tolerable"
        )
    return result


def run_app_pair(
    profile: AppProfile, cfg: LatencyConfig
) -> AppLatency:
    """Fault-free and faulty runs of one app with identical traffic seed."""
    ff = run_app(profile, cfg, faulty=False)
    fy = run_app(profile, cfg, faulty=True)
    return AppLatency(
        app=profile.name,
        fault_free=ff.avg_network_latency,
        faulty=fy.avg_network_latency,
        fault_free_result=ff,
        faulty_result=fy,
    )


def run_suite(
    suite: str,
    cfg: LatencyConfig | None = None,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> list[AppLatency]:
    """All applications of a suite (optionally a named subset)."""
    results, _ = run_suite_sharded(
        suite, cfg, apps=apps, jobs=jobs, engine=engine
    )
    return results


def run_suite_sharded(
    suite: str,
    cfg: LatencyConfig | None = None,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> tuple[list[AppLatency], "SweepReport"]:
    """Suite sweep through the lane engine: one point per (application,
    fault-state) pair, reassembled into per-app results.

    Every point shares one structural key (same 8x8 mesh, protected
    router, XY routing — only traffic and fault schedules differ), so
    with ``engine="batched"`` the whole suite steps as lanes of a
    single :class:`repro.network.batched.BatchedLaneEngine` per chunk,
    refilling retired lanes from the remaining points.  Each point's
    simulation is fully seeded by its own config (traffic and fault
    seeds derive from ``cfg.seed``), so any ``jobs``/engine combination
    is bit-identical to a serial ``engine="event"`` run.
    """
    from .parallel import LanePoint, run_lane_sweep

    cfg = cfg or LatencyConfig()
    profiles = suite_profiles(suite)
    if apps is not None:
        wanted = set(apps)
        profiles = tuple(p for p in profiles if p.name in wanted)
        missing = wanted - {p.name for p in profiles}
        if missing:
            raise ValueError(f"unknown apps for {suite}: {sorted(missing)}")
    net = cfg.network()
    sim_config = cfg.simulation()
    points = []
    for p in profiles:
        for faulty in (False, True):
            points.append(
                LanePoint(
                    config=net,
                    sim_config=sim_config,
                    make_traffic=suite_traffic,
                    traffic_args=(net, p.name, cfg.seed, cfg.rate_scale),
                    make_schedule=suite_schedule if faulty else None,
                    schedule_args=(
                        (net, cfg.warmup_cycles, cfg.num_faults, cfg.seed)
                        if faulty
                        else ()
                    ),
                    router_kind="protected",
                    label=f"{p.name}:{'faulty' if faulty else 'fault-free'}",
                )
            )
    values, report = run_lane_sweep(points, jobs=jobs, engine=engine)
    results = []
    for i, p in enumerate(profiles):
        ff, fy = values[2 * i], values[2 * i + 1]
        for res in (ff, fy):
            if res.blocked:
                raise RuntimeError(
                    f"{p.name}: network blocked — fault schedule should "
                    "have been tolerable"
                )
        results.append(
            AppLatency(
                app=p.name,
                fault_free=ff.avg_network_latency,
                faulty=fy.avg_network_latency,
                fault_free_result=ff,
                faulty_result=fy,
            )
        )
    return results, report


def overall_overhead(results: Sequence[AppLatency]) -> float:
    """Suite-level latency increase: mean of per-app overheads."""
    if not results:
        raise ValueError("no app results")
    return sum(r.overhead for r in results) / len(results)


def suite_experiment(
    experiment: str,
    title: str,
    suite: str,
    paper_overall_overhead: float,
    cfg: LatencyConfig | None = None,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> ExperimentResult:
    """Shared Figure 7/8 driver producing an :class:`ExperimentResult`."""
    cfg = cfg or LatencyConfig()
    results, sweep_report = run_suite_sharded(
        suite, cfg, apps=apps, jobs=jobs, engine=engine
    )
    res = ExperimentResult(experiment, title)
    for r in results:
        res.add(
            f"{r.app}: fault-free latency", round(r.fault_free, 2), None,
            unit="cycles",
        )
        res.add(
            f"{r.app}: faulty latency", round(r.faulty, 2), None,
            unit="cycles",
        )
        res.add(f"{r.app}: overhead", round(r.overhead, 3), None)
    res.add(
        "overall latency increase",
        round(overall_overhead(results), 3),
        paper_overall_overhead,
        note="paper reports bar charts; the overall percentage is the "
        "stated headline",
    )
    res.extras["results"] = results
    res.extras["config"] = cfg
    res.extras["sweep"] = sweep_report
    from .charts import latency_figure

    res.extras["chart"] = latency_figure(results, title)
    return res
