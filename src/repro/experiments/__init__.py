"""Experiment harness: one module per paper table/figure, plus extensions.

Paper artefacts:

=================  ==========================================
``table1``         Table I — baseline pipeline FIT
``table2``         Table II — correction circuitry FIT
``mttf``           Equations 4-7 — MTTF and the ~6x improvement
``table3``         Table III — SPF comparison
``spf_sweep``      Section VIII-E — SPF vs VC count
``area_power``     Section VI-A — area/power overheads
``critical_path``  Section VI-B — per-stage critical paths
``fig7``           Figure 7 — SPLASH-2 latency under faults
``fig8``           Figure 8 — PARSEC latency under faults
=================  ==========================================

Extensions beyond the paper:

=======================  ==========================================
``load_latency``         load-latency curves, fault-free vs faulty
``network_reliability``  fabric-level MTTF / mesh disconnection
``reliability_curves``   R(t) survival curves + mission times
``energy``               per-flit energy under faults
``detection_latency``    online fault observability (NoCAlert model)
``fault_sweep``          latency overhead vs fault count
``design_space``         VC/buffer provisioning trade-offs
``mttf_sensitivity``     MTTF vs temperature/voltage (TDDB)
=======================  ==========================================

Run from the command line::

    python -m repro.experiments table3
    python -m repro.experiments fig7 --quick
    python -m repro.experiments all --quick
"""

from .report import ExperimentResult, Row
from .runner import EXPERIMENTS, ExperimentEntry, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "ExperimentResult",
    "Row",
    "run_experiment",
]
