"""Experiment ``area_power`` — Section VI-A: area and power overheads.

Correction circuitry alone: +28 % area, +29 % power; with the fault-
detection mechanism: +31 % area, +30 % power.
"""

from __future__ import annotations

from ..reliability.stages import RouterGeometry
from ..synthesis.area import analyze_area
from ..synthesis.power import analyze_power
from .report import ExperimentResult

PAPER = {
    "area_correction": 0.28,
    "area_total": 0.31,
    "power_correction": 0.29,
    "power_total": 0.30,
}


def run(geom: RouterGeometry | None = None) -> ExperimentResult:
    geom = geom or RouterGeometry()
    area = analyze_area(geom)
    power = analyze_power(geom)
    res = ExperimentResult(
        "area_power", "Area & power overhead (Section VI-A, 45 nm proxy)"
    )
    res.add(
        "area overhead (correction only)",
        round(area.correction_overhead, 3),
        PAPER["area_correction"],
    )
    res.add(
        "area overhead (with detection)",
        round(area.total_overhead, 3),
        PAPER["area_total"],
    )
    res.add(
        "power overhead (correction only)",
        round(power.correction_overhead, 3),
        PAPER["power_correction"],
    )
    res.add(
        "power overhead (with detection)",
        round(power.total_overhead, 3),
        PAPER["power_total"],
    )
    res.add("baseline router area", round(area.baseline_um2), None, unit="um^2",
            note="proxy absolute value; ratios are the reproduction target")
    res.add("protected router area", round(area.protected_um2), None, unit="um^2")
    res.extras["area"] = area
    res.extras["power"] = power
    return res
