"""Experiment ``area_power`` — Section VI-A: area and power overheads.

Correction circuitry alone: +28 % area, +29 % power; with the fault-
detection mechanism: +31 % area, +30 % power.
"""

from __future__ import annotations

from typing import Optional

from ..reliability.stages import RouterGeometry
from ..synthesis.area import analyze_area
from ..synthesis.power import analyze_power
from .report import ExperimentResult, coerce_geom

PAPER = {
    "area_correction": 0.28,
    "area_total": 0.31,
    "power_correction": 0.29,
    "power_total": 0.30,
}


def run(
    config: Optional[RouterGeometry] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`~repro.reliability.stages.RouterGeometry`;
    the old ``run(geom=...)`` keyword still works but is deprecated.
    The analysis is closed-form, so ``jobs``/``seed``/``out_dir``/
    ``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    geom = coerce_geom("area_power", config, legacy) or RouterGeometry()
    area = analyze_area(geom)
    power = analyze_power(geom)
    res = ExperimentResult(
        "area_power", "Area & power overhead (Section VI-A, 45 nm proxy)"
    )
    res.add(
        "area overhead (correction only)",
        round(area.correction_overhead, 3),
        PAPER["area_correction"],
    )
    res.add(
        "area overhead (with detection)",
        round(area.total_overhead, 3),
        PAPER["area_total"],
    )
    res.add(
        "power overhead (correction only)",
        round(power.correction_overhead, 3),
        PAPER["power_correction"],
    )
    res.add(
        "power overhead (with detection)",
        round(power.total_overhead, 3),
        PAPER["power_total"],
    )
    res.add("baseline router area", round(area.baseline_um2), None, unit="um^2",
            note="proxy absolute value; ratios are the reproduction target")
    res.add("protected router area", round(area.protected_um2), None, unit="um^2")
    res.extras["area"] = area
    res.extras["power"] = power
    return res
