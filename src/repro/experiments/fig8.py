"""Experiment ``fig8`` — paper Figure 8: PARSEC latency under faults.

"Overall NoC latency has increased by ... 13 % for ... PARSEC benchmark
applications ... in the presence of multiple faults."
"""

from __future__ import annotations

from typing import Optional, Sequence

from .latency import LatencyConfig, suite_experiment
from .report import ExperimentResult

PAPER_OVERALL_OVERHEAD = 0.13


def run(
    cfg: LatencyConfig | None = None,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    return suite_experiment(
        "fig8",
        "PARSEC latency, fault-free vs faulty (Figure 8)",
        "parsec",
        PAPER_OVERALL_OVERHEAD,
        cfg=cfg,
        apps=apps,
        jobs=jobs,
    )
