"""Experiment ``fig8`` — paper Figure 8: PARSEC latency under faults.

"Overall NoC latency has increased by ... 13 % for ... PARSEC benchmark
applications ... in the presence of multiple faults."
"""

from __future__ import annotations

from typing import Optional

from .latency import LatencyConfig, SuiteRunConfig, coerce_suite_config, suite_experiment
from .report import ExperimentResult
from .resilient import sweep_runtime

PAPER_OVERALL_OVERHEAD = 0.13


def run(
    config: "LatencyConfig | SuiteRunConfig | None" = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    See :func:`repro.experiments.fig7.run`; this is the PARSEC suite.
    """
    cfg = coerce_suite_config("fig8", config, legacy, seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return suite_experiment(
            "fig8",
            "PARSEC latency, fault-free vs faulty (Figure 8)",
            "parsec",
            PAPER_OVERALL_OVERHEAD,
            cfg=cfg.latency,
            apps=cfg.apps,
            jobs=jobs,
            engine=cfg.engine,
        )
