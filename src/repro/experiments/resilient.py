"""Resilient sweep runtime: checkpointed, resumable, retrying execution.

The paper's router keeps delivering packets while arbiters and crossbar
muxes die; this module gives the *experiment harness* the same shape of
graceful degradation (detect → contain → reroute, FASHION-style) for the
sweeps in :mod:`repro.experiments.parallel`:

* **detect** — every point runs in a supervised worker process with a
  per-attempt wall-clock watchdog; a crashed (e.g. OOM-killed) or hung
  worker is noticed within one poll interval;
* **contain** — the loss is confined to that one point: the worker is
  killed and replaced, the point is retried with exponential backoff
  (:class:`RetryPolicy`), and every *other* point keeps running;
* **degrade** — a point that exhausts its retries becomes a recorded
  failure, not an abort: the sweep completes everything completable and
  raises :class:`~repro.experiments.parallel.PartialSweepError` carrying
  a :class:`~repro.experiments.parallel.PartialSweepReport` that lists
  completed / failed / skipped points (the CLI maps it to a distinct
  exit code, 3, vs 1 for a hard failure);
* **checkpoint / resume** — with a run directory attached
  (:class:`CheckpointStore`), each completed point is appended to an
  append-only JSONL file the moment it finishes, so a sweep killed
  mid-run (SIGKILL, preemption, power loss) resumes with ``--resume
  RUN_DIR`` re-executing only the missing points.  Because every point
  is seeded up front via ``SeedSequence.spawn`` and results are merged
  in task-index order, a resumed run is bit-identical to an
  uninterrupted one (pinned by ``tests/test_resilient.py``).

Activation is context-based so the experiment modules need no plumbing:
:func:`sweep_runtime` installs the runtime for the current call stack and
:func:`~repro.experiments.parallel.run_sweep` consults it.  The unified
``run(config, *, jobs=None, seed=None, out_dir=None, resume=None)``
experiment entry points (see :mod:`repro.experiments.runner`) wrap their
bodies in it, which is how ``--out-dir`` / ``--resume`` / ``--retries`` /
``--task-timeout`` on ``python -m repro.experiments`` reach every nested
sweep.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from hashlib import sha256
from multiprocessing import connection
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CheckpointStore",
    "ResumeError",
    "RetryPolicy",
    "SweepRuntime",
    "active_runtime",
    "atomic_write_json",
    "configure",
    "reset",
    "sweep_runtime",
]


def atomic_write_json(path: str | os.PathLike, obj: Any, **dump_kwargs: Any) -> None:
    """Write ``obj`` as JSON so readers never observe a torn file.

    The durable-store primitive shared by :class:`CheckpointStore`
    (manifest updates) and :class:`repro.service.cache.ResultCache`
    (content-addressed entries): dump to a sibling ``.tmp`` file, then
    :func:`os.replace` it into place — on POSIX the rename is atomic, so
    a crash mid-write leaves either the old content or the new, never a
    prefix of the new.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fp:
        json.dump(obj, fp, **dump_kwargs)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before a point is declared failed.

    ``max_attempts`` counts the first execution too (1 = no retries).
    A crash, hang (``timeout_s`` exceeded), or in-task exception each
    consume one attempt; consecutive attempts of the same point are
    separated by ``backoff_s * backoff_factor**(attempt-1)`` seconds,
    capped at ``max_backoff_s``.  ``timeout_s=None`` disables the
    watchdog.  Retrying is sound because every point is a pure function
    of its spawned seed: a retried point returns bit-identical results.
    """

    max_attempts: int = 3
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        return min(self.max_backoff_s, self.backoff_s * self.backoff_factor ** (attempt - 1))


#: a policy that reproduces the classic engine's behaviour exactly
NO_RETRY = RetryPolicy(max_attempts=1)


# ----------------------------------------------------------------------
# durable run directory
# ----------------------------------------------------------------------
class ResumeError(RuntimeError):
    """The run directory does not match the sweep being (re-)executed."""


MANIFEST_NAME = "manifest.json"
_MANIFEST_VERSION = 1


def sweep_fingerprint(tasks: Sequence[Any]) -> str:
    """Identity of a sweep for resume validation.

    Hashes the task count plus each point's ``(index, label, fn)``
    triple.  Arguments are deliberately *not* hashed (their pickles are
    not stable across interpreter invocations under ``PYTHONHASHSEED``);
    labels conventionally encode the swept parameters, which is the
    discriminating power resume validation needs.
    """
    ident = [
        (t.index, t.label, f"{t.fn.__module__}.{t.fn.__qualname__}")
        for t in tasks
    ]
    return sha256(json.dumps(ident, sort_keys=True).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CompletedPoint:
    """One checkpointed point, as reloaded from the run directory."""

    index: int
    value: Any
    cycles: int
    setup_s: float
    run_s: float
    attempts: int
    fallbacks: int = 0
    fallback_reasons: Tuple[str, ...] = ()
    #: sweep points behind this record (lane chunks cover several)
    points: int = 1


class CheckpointStore:
    """Append-only durable state of one run directory.

    Layout::

        RUN_DIR/
          manifest.json    {"version": 1, "sweeps": {"0": {"points": N,
                            "fingerprint": "...", "file": "sweep-000.jsonl"}}}
          sweep-000.jsonl  one JSON line per completed point
          sweep-001.jsonl  (experiments may run several sweeps in sequence)

    Each JSONL line carries the point's index, label, attempt count,
    cycle/timing accounting, and the base64-pickled return value — enough
    to splice the point back into a resumed sweep bit-identically.  Lines
    are flushed as they are appended, and a truncated final line (the
    signature of a SIGKILL mid-write) is ignored on reload.
    """

    def __init__(self, path: str | os.PathLike, resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = bool(resume)
        manifest_path = self.path / MANIFEST_NAME
        if manifest_path.exists():
            if not resume:
                raise ResumeError(
                    f"{self.path} already holds a run; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a fresh "
                    "--out-dir"
                )
            with open(manifest_path) as fp:
                self._manifest = json.load(fp)
            if self._manifest.get("version") != _MANIFEST_VERSION:
                raise ResumeError(
                    f"unsupported manifest version in {manifest_path}"
                )
        else:
            self.path.mkdir(parents=True, exist_ok=True)
            self._manifest = {"version": _MANIFEST_VERSION, "sweeps": {}}
            self._write_manifest()
        self._files: Dict[int, Any] = {}

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        atomic_write_json(
            self.path / MANIFEST_NAME, self._manifest, sort_keys=True, indent=1
        )

    def _sweep_file(self, seq: int) -> Path:
        return self.path / f"sweep-{seq:03d}.jsonl"

    # ------------------------------------------------------------------
    def open_sweep(
        self, seq: int, fingerprint: str, points: int
    ) -> Dict[int, CompletedPoint]:
        """Register sweep ``seq`` and return its already-completed points.

        On a fresh run the sweep is recorded in the manifest and the
        returned dict is empty.  On resume the manifest entry must match
        the fingerprint and point count, else :class:`ResumeError` —
        resuming a *different* sweep from a stale directory would merge
        unrelated results.
        """
        key = str(seq)
        entry = self._manifest["sweeps"].get(key)
        if entry is None:
            self._manifest["sweeps"][key] = {
                "points": points,
                "fingerprint": fingerprint,
                "file": self._sweep_file(seq).name,
            }
            self._write_manifest()
            return {}
        if entry["fingerprint"] != fingerprint or entry["points"] != points:
            raise ResumeError(
                f"sweep {seq} in {self.path} was recorded with "
                f"{entry['points']} point(s) / fingerprint "
                f"{entry['fingerprint']}; the sweep being resumed has "
                f"{points} point(s) / fingerprint {fingerprint} — the run "
                "directory belongs to a different configuration"
            )
        return self._load(seq, points)

    def _load(self, seq: int, points: int) -> Dict[int, CompletedPoint]:
        path = self._sweep_file(seq)
        done: Dict[int, CompletedPoint] = {}
        if not path.exists():
            return done
        with open(path, "rb") as fp:
            for raw in fp:
                try:
                    rec = json.loads(raw)
                    value = pickle.loads(base64.b64decode(rec["value"]))
                except (ValueError, KeyError, EOFError, pickle.UnpicklingError):
                    # truncated / torn final line from an interrupted run
                    continue
                index = int(rec["index"])
                if not 0 <= index < points:
                    continue
                done[index] = CompletedPoint(
                    index=index,
                    value=value,
                    cycles=int(rec.get("cycles", 0)),
                    setup_s=float(rec.get("setup_s", 0.0)),
                    run_s=float(rec.get("run_s", 0.0)),
                    attempts=int(rec.get("attempts", 1)),
                    fallbacks=int(rec.get("fallbacks", 0)),
                    fallback_reasons=tuple(rec.get("fallback_reasons", [])),
                    points=int(rec.get("points", 1)),
                )
        return done

    def append(
        self,
        seq: int,
        *,
        index: int,
        label: str,
        value_bytes: bytes,
        cycles: int,
        setup_s: float,
        run_s: float,
        attempts: int,
        fallbacks: int = 0,
        fallback_reasons: Sequence[str] = (),
        points: int = 1,
    ) -> None:
        """Durably record one completed point (append + flush)."""
        fp = self._files.get(seq)
        if fp is None:
            fp = open(self._sweep_file(seq), "a")
            self._files[seq] = fp
        rec = {
            "index": index,
            "label": label,
            "attempts": attempts,
            "cycles": cycles,
            "fallbacks": fallbacks,
            "fallback_reasons": list(fallback_reasons),
            "points": points,
            "setup_s": round(setup_s, 6),
            "run_s": round(run_s, 6),
            "value": base64.b64encode(value_bytes).decode("ascii"),
        }
        fp.write(json.dumps(rec, sort_keys=True) + "\n")
        fp.flush()

    def close(self) -> None:
        for fp in self._files.values():
            fp.close()
        self._files.clear()


# ----------------------------------------------------------------------
# runtime context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRuntime:
    """The resilience configuration one :func:`sweep_runtime` installs.

    ``progress`` is an optional per-point completion hook: the resilient
    executor calls it with a small dict (``sweep`` sequence number,
    point ``index``/``label``, ``attempts``, ``resumed``) the moment each
    point finishes.  It runs on the supervisor thread, so it must be
    cheap and thread-safe — :mod:`repro.service` uses it to stream
    completed points to HTTP clients while the sweep is still running.
    """

    store: Optional[CheckpointStore] = None
    retry: RetryPolicy = RetryPolicy()
    progress: Optional[Callable[[Dict[str, Any]], None]] = None


class _ActiveRun:
    """Mutable per-activation state: the runtime plus a sweep counter.

    Experiments may run several sweeps in sequence (e.g. baseline then
    protected Monte Carlo); the counter assigns each its own checkpoint
    file.  The execution order of sweeps inside an experiment is
    deterministic, so sequence numbers line up across runs and resumes.
    """

    __slots__ = ("runtime", "next_seq")

    def __init__(self, runtime: SweepRuntime) -> None:
        self.runtime = runtime
        self.next_seq = 0


#: per-thread activation: the sweep-as-a-service server computes several
#: experiments concurrently, each on its own thread with its own runtime
#: (progress hook, checkpoint store); a module-global here would leak one
#: request's runtime into another's sweeps
_tls = threading.local()


def _get_active() -> Optional[_ActiveRun]:
    return getattr(_tls, "active", None)


def _set_active(run: Optional[_ActiveRun]) -> None:
    _tls.active = run


#: process default retry policy; ``configure`` (CLI --retries/--task-timeout)
#: replaces it and forces the resilient executor on for subsequent runs
_default_policy: RetryPolicy = RetryPolicy()
_force_resilient: bool = False


def configure(
    *,
    max_attempts: Optional[int] = None,
    backoff_s: Optional[float] = None,
    backoff_factor: Optional[float] = None,
    max_backoff_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
) -> RetryPolicy:
    """Set the process-default :class:`RetryPolicy` and force resilient mode.

    Mirrors :func:`repro.observability.configure`: the CLI calls this for
    ``--retries`` / ``--task-timeout`` so retry behaviour reaches sweeps
    nested arbitrarily deep in an experiment.  Returns the new default.
    """
    global _default_policy, _force_resilient
    changes = {
        k: v
        for k, v in {
            "max_attempts": max_attempts,
            "backoff_s": backoff_s,
            "backoff_factor": backoff_factor,
            "max_backoff_s": max_backoff_s,
            "timeout_s": timeout_s,
        }.items()
        if v is not None
    }
    _default_policy = replace(_default_policy, **changes)
    _force_resilient = True
    return _default_policy


def reset() -> None:
    """Restore the inactive default (test isolation helper)."""
    global _default_policy, _force_resilient
    _default_policy = RetryPolicy()
    _force_resilient = False
    _set_active(None)


def active_runtime() -> Optional[SweepRuntime]:
    """The installed runtime of the current thread, or ``None``."""
    active = _get_active()
    return None if active is None else active.runtime


@contextmanager
def sweep_runtime(
    out_dir: Optional[str | os.PathLike] = None,
    resume: Optional[str | os.PathLike] = None,
    retry: Optional[RetryPolicy] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Iterator[Optional[SweepRuntime]]:
    """Install the resilient runtime for sweeps run inside the block.

    ``resume`` names an existing run directory (missing points only are
    re-executed; checkpointing continues into the same directory);
    ``out_dir`` starts a fresh one.  With neither, the block is a no-op
    unless a retry policy (here or via :func:`configure`) or a
    ``progress`` hook is given, in which case sweeps run supervised
    without durability.  Activation is **per thread** — concurrent
    threads (e.g. the results server computing several cache misses at
    once) each get their own runtime.  Nested activations on the same
    thread are no-ops: the outermost runtime wins, so an experiment
    entry point wrapping its body does not disturb a caller's runtime.
    """
    active = _get_active()
    if active is not None:  # outermost activation wins
        yield active.runtime
        return
    store: Optional[CheckpointStore] = None
    if resume is not None:
        store = CheckpointStore(resume, resume=True)
    elif out_dir is not None:
        store = CheckpointStore(out_dir, resume=False)
    policy = retry if retry is not None else _default_policy
    if (
        store is None
        and retry is None
        and progress is None
        and not _force_resilient
    ):
        yield None
        return
    run = _ActiveRun(SweepRuntime(store=store, retry=policy, progress=progress))
    _set_active(run)
    try:
        yield run.runtime
    finally:
        _set_active(None)
        if store is not None:
            store.close()


def _claim_sequence() -> int:
    active = _get_active()
    assert active is not None
    seq = active.next_seq
    active.next_seq += 1
    return seq


# ----------------------------------------------------------------------
# supervised worker processes
# ----------------------------------------------------------------------
def _worker_main(conn: connection.Connection) -> None:  # pragma: no cover — child
    """Worker loop: receive ``(index, payload)``, send a result dict.

    Runs until the supervisor sends ``None`` or the pipe closes.  All
    exceptions — including unpickling a poisoned task and pickling an
    unpicklable result — are contained to the offending point.
    """
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        index, payload = msg
        try:
            conn.send(_run_payload(index, payload))
        except (BrokenPipeError, OSError):
            return


def _run_payload(index: int, payload: bytes) -> dict:
    """Execute one pickled task; never raises."""
    import traceback as tb

    from ..network import warm

    warm.drain_setup_seconds()
    t0 = time.perf_counter()
    try:
        task = pickle.loads(payload)
        out = task.fn(*task.args, **task.kwargs)
        if type(out).__name__ == "PointOutcome":
            value, cycles = out.value, int(out.cycles)
            fallbacks = int(getattr(out, "fallbacks", 0))
            reasons = list(getattr(out, "fallback_reasons", ()) or ())
            points = int(getattr(out, "points", 1))
        else:
            value = out
            raw = getattr(out, "cycles", 0)
            cycles = int(raw) if isinstance(raw, int) else 0
            fallbacks = 0
            reasons = []
            points = 1
        value_bytes = pickle.dumps(value)
    except Exception as exc:
        return {
            "index": index,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": tb.format_exc(),
        }
    wall = time.perf_counter() - t0
    setup = warm.drain_setup_seconds()
    return {
        "index": index,
        "ok": True,
        "value": value_bytes,
        "cycles": cycles,
        "fallbacks": fallbacks,
        "fallback_reasons": reasons,
        "points": points,
        "setup_s": setup,
        "run_s": max(0.0, wall - setup),
    }


class _Worker:
    """One supervised worker slot (process + pipe + in-flight state)."""

    __slots__ = ("slot", "proc", "conn", "index", "attempt", "started",
                 "points", "cycles", "setup_s", "run_s", "retries",
                 "timeouts", "checkpointed", "fallbacks",
                 "fallback_reasons")

    def __init__(self, slot: int, ctx) -> None:
        self.slot = slot
        self.points = 0
        self.cycles = 0
        self.setup_s = 0.0
        self.run_s = 0.0
        self.retries = 0
        self.timeouts = 0
        self.checkpointed = 0
        self.fallbacks = 0
        self.fallback_reasons: List[str] = []
        self.proc = None
        self.conn = None
        self.index: Optional[int] = None
        self.spawn(ctx)

    def spawn(self, ctx) -> None:
        parent, child = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child,), daemon=True,
            name=f"resilient-worker-{self.slot}",
        )
        proc.start()
        child.close()
        self.proc, self.conn = proc, parent
        self.index, self.attempt, self.started = None, 0, 0.0

    @property
    def busy(self) -> bool:
        return self.index is not None

    def dispatch(self, index: int, attempt: int, payload: bytes) -> None:
        self.conn.send((index, payload))
        self.index, self.attempt = index, attempt
        self.started = time.monotonic()

    def discard(self, kill: bool = True) -> None:
        """Tear the slot down (crashed, hung, or sweep over)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover — already gone
            pass
        if self.proc is not None:
            if kill and self.proc.is_alive():
                self.proc.kill()
            self.proc.join(timeout=5.0)

    def shutdown(self) -> None:
        """Polite end-of-sweep stop (lets the worker exit its loop)."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.discard(kill=True)


#: supervisor poll interval: health checks and backoff wakeups (seconds)
_POLL_S = 0.05


class _Supervisor:
    """Run a list of tasks across replaceable workers with retries.

    The supervisor owns all scheduling state: a ready queue of
    ``(not_before, attempt, task)`` entries, the busy map implied by the
    worker slots, and the outcome tables.  One loop iteration = dispatch
    what is due, wait briefly for results, then health-check every busy
    worker (crash and watchdog detection).
    """

    def __init__(self, tasks, n_workers: int, policy: RetryPolicy, ctx) -> None:
        self.policy = policy
        self.ctx = ctx
        self.tasks = {t.index: t for t in tasks}
        self.payloads: Dict[int, bytes] = {}
        self.results: Dict[int, dict] = {}
        self.failures: Dict[int, dict] = {}
        self.attempts: Dict[int, int] = {t.index: 0 for t in tasks}
        self.ready: List[Tuple[float, int]] = []  # (not_before, index)
        self.on_success = None  # set by execute_sweep for checkpointing
        for t in tasks:
            try:
                self.payloads[t.index] = pickle.dumps(t)
            except Exception as exc:
                # an unpicklable task cannot reach a worker; retrying
                # cannot help either — fail the point immediately
                self.failures[t.index] = {
                    "error": f"unpicklable task: {type(exc).__name__}: {exc}",
                    "traceback": "",
                    "attempts": 1,
                }
        self.ready = [
            (0.0, t.index) for t in tasks if t.index not in self.failures
        ]
        self.workers = [
            _Worker(slot, ctx)
            for slot in range(min(n_workers, max(1, len(self.ready))))
        ]

    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        return len(self.ready) + sum(1 for w in self.workers if w.busy)

    def run(self) -> None:
        try:
            while self.outstanding:
                self._dispatch_due()
                self._collect(timeout=self._poll_timeout())
                self._health_check()
        finally:
            for w in self.workers:
                w.shutdown()

    # ------------------------------------------------------------------
    def _poll_timeout(self) -> float:
        """Sleep at most to the next backoff release or watchdog deadline."""
        now = time.monotonic()
        horizon = now + _POLL_S
        for not_before, _ in self.ready:
            horizon = min(horizon, max(now, not_before))
        if self.policy.timeout_s is not None:
            for w in self.workers:
                if w.busy:
                    horizon = min(horizon, w.started + self.policy.timeout_s)
        return max(0.0, horizon - now)

    def _dispatch_due(self) -> None:
        if not self.ready:
            return
        now = time.monotonic()
        for w in self.workers:
            if not self.ready:
                return
            if w.busy:
                continue
            slot_i = next(
                (i for i, (nb, _) in enumerate(self.ready) if nb <= now), None
            )
            if slot_i is None:
                return
            _, index = self.ready.pop(slot_i)
            self.attempts[index] += 1
            w.dispatch(index, self.attempts[index], self.payloads[index])

    def _collect(self, timeout: float) -> None:
        busy = {w.conn: w for w in self.workers if w.busy}
        if not busy:
            if timeout:
                time.sleep(timeout)
            return
        for conn in connection.wait(list(busy), timeout=timeout):
            w = busy[conn]
            try:
                result = conn.recv()
            except (EOFError, OSError):
                # a dead process is attributed by the health check; a
                # live worker that closed its pipe is equally lost —
                # replace it and charge the attempt here
                if w.proc.is_alive():
                    index = w.index
                    self._replace(w)
                    self._attempt_failed(
                        w, index, "worker closed its result pipe", ""
                    )
                continue
            index = w.index
            w.index = None
            if result["ok"]:
                w.points += 1
                w.cycles += result["cycles"]
                w.fallbacks += result.get("fallbacks", 0)
                for r in result.get("fallback_reasons", []):
                    if r not in w.fallback_reasons:
                        w.fallback_reasons.append(r)
                w.setup_s += result["setup_s"]
                w.run_s += result["run_s"]
                result["attempts"] = self.attempts[index]
                result["slot"] = w.slot
                self.results[index] = result
                if self.on_success is not None:
                    self.on_success(index, result, w)
            else:
                self._attempt_failed(w, index, result["error"], result["traceback"])

    def _health_check(self) -> None:
        now = time.monotonic()
        for w in self.workers:
            if not w.busy:
                continue
            if not w.proc.is_alive():
                index = w.index
                code = w.proc.exitcode
                self._replace(w)
                self._attempt_failed(
                    w, index,
                    f"worker crashed (exit code {code})",
                    "",
                )
            elif (
                self.policy.timeout_s is not None
                and now - w.started > self.policy.timeout_s
            ):
                index = w.index
                w.timeouts += 1
                self._replace(w)
                self._attempt_failed(
                    w, index,
                    f"point timed out after {self.policy.timeout_s:g}s "
                    "(worker killed and replaced)",
                    "",
                )

    def _replace(self, w: _Worker) -> None:
        """Kill a crashed/hung worker's remains and respawn the slot."""
        w.discard(kill=True)
        w.spawn(self.ctx)

    def _attempt_failed(
        self, w: _Worker, index: int, error: str, tb: str
    ) -> None:
        attempt = self.attempts[index]
        if attempt < self.policy.max_attempts:
            w.retries += 1
            self.ready.append(
                (time.monotonic() + self.policy.delay(attempt), index)
            )
        else:
            self.failures[index] = {
                "error": error, "traceback": tb, "attempts": attempt,
            }


# ----------------------------------------------------------------------
# the resilient run_sweep implementation
# ----------------------------------------------------------------------
def execute_sweep(tasks, jobs: Optional[int]):
    """Entry point used by :func:`repro.experiments.parallel.run_sweep`.

    Returns ``(values, SweepReport)`` like the classic engine; raises
    :class:`~repro.experiments.parallel.PartialSweepError` when points
    remain failed after retries (carrying everything that *did* complete)
    — never a raw worker traceback.
    """
    from ..observability import MetricsRegistry, global_config, merge_exports
    from .parallel import (
        PartialSweepError,
        PartialSweepReport,
        PointFailure,
        ShardReport,
        SweepReport,
        _pool_context,
        resolve_jobs,
    )

    active = _get_active()
    assert active is not None, "execute_sweep requires an active runtime"
    runtime = active.runtime
    store, policy = runtime.store, runtime.retry
    progress = runtime.progress
    seq = _claim_sequence()

    done: Dict[int, CompletedPoint] = {}
    if store is not None:
        done = store.open_sweep(seq, sweep_fingerprint(tasks), len(tasks))
    todo = [t for t in tasks if t.index not in done]
    labels = {t.index: t.label for t in tasks}
    if progress is not None:
        for index in sorted(done):
            progress({
                "sweep": seq,
                "index": index,
                "label": labels[index],
                "attempts": done[index].attempts,
                "points": done[index].points,
                "resumed": True,
            })

    t0 = time.perf_counter()
    sup: Optional[_Supervisor] = None
    skipped: Tuple[int, ...] = ()
    if todo:
        n_workers = min(resolve_jobs(jobs), len(todo)) or 1
        sup = _Supervisor(todo, n_workers, policy, _pool_context())

        def _on_point_done(index: int, result: dict, w: _Worker) -> None:
            if store is not None:
                store.append(
                    seq,
                    index=index,
                    label=labels[index],
                    value_bytes=result["value"],
                    cycles=result["cycles"],
                    setup_s=result["setup_s"],
                    run_s=result["run_s"],
                    attempts=result["attempts"],
                    fallbacks=result.get("fallbacks", 0),
                    fallback_reasons=result.get("fallback_reasons", []),
                    points=result.get("points", 1),
                )
                w.checkpointed += 1
            if progress is not None:
                progress({
                    "sweep": seq,
                    "index": index,
                    "label": labels[index],
                    "attempts": result["attempts"],
                    "points": result.get("points", 1),
                    "resumed": False,
                })

        sup.on_success = _on_point_done
        try:
            sup.run()
        except KeyboardInterrupt:
            # graceful preemption: everything checkpointed so far is
            # durable; report the rest as skipped instead of vanishing
            skipped = tuple(
                sorted(
                    set(t.index for t in todo)
                    - set(sup.results)
                    - set(sup.failures)
                )
            )
    wall = time.perf_counter() - t0

    # ---- reassemble values in task-index order -----------------------
    values: List[Any] = [None] * len(tasks)
    failures: List[PointFailure] = []
    for index, point in done.items():
        values[index] = point.value
    if sup is not None:
        for index, result in sup.results.items():
            values[index] = pickle.loads(result["value"])
        for index in sorted(sup.failures):
            info = sup.failures[index]
            failures.append(
                PointFailure(
                    index=index,
                    label=labels[index],
                    error=f"{info['error']} "
                    f"[{info['attempts']} attempt(s)]",
                    traceback=info["traceback"],
                )
            )

    # ---- shard reports: one per worker slot, plus the resumed points --
    shards = []
    if sup is not None:
        shards = [
            ShardReport(
                shard=w.slot,
                points=w.points,
                wall_time=wall,
                cycles=w.cycles,
                setup_s=w.setup_s,
                run_s=w.run_s,
                retries=w.retries,
                timeouts=w.timeouts,
                checkpointed=w.checkpointed,
                fallbacks=w.fallbacks,
                fallback_reasons=tuple(w.fallback_reasons),
            )
            for w in sup.workers
        ]
    if done:
        shards.append(
            ShardReport(
                shard=-1,
                points=sum(p.points for p in done.values()),
                wall_time=0.0,
                cycles=sum(p.cycles for p in done.values()),
                setup_s=sum(p.setup_s for p in done.values()),
                run_s=sum(p.run_s for p in done.values()),
                fallbacks=sum(p.fallbacks for p in done.values()),
                fallback_reasons=tuple(dict.fromkeys(
                    r
                    for p in done.values()
                    for r in p.fallback_reasons
                )),
            )
        )

    completed = tuple(i for i, v in enumerate(values) if v is not None)
    exports = [
        (tasks[i].label, getattr(v, "observability", None))
        for i, v in enumerate(values)
    ]
    observability = merge_exports(exports)
    # surface runtime counters through the metrics registry when it is on
    if global_config().metrics:
        reg = MetricsRegistry()
        reg.inc("resilient.points_completed", len(completed))
        reg.inc(
            "resilient.points_resumed",
            sum(p.points for p in done.values()),
        )
        reg.inc("resilient.points_failed", len(failures))
        reg.inc("resilient.points_skipped", len(skipped))
        reg.inc("resilient.retries", sum(s.retries for s in shards))
        reg.inc("resilient.timeouts", sum(s.timeouts for s in shards))
        reg.inc("resilient.checkpointed", sum(s.checkpointed for s in shards))
        merged = merge_exports(
            (exports if observability else [])
            + [("resilient-runtime", {"metrics": reg.snapshot()})]
        )
        observability = merged

    report_kwargs = dict(
        jobs=len(sup.workers) if sup is not None else 0,
        points=len(tasks),
        wall_time=wall,
        shards=tuple(shards),
        observability=observability,
        # point-accurate: a resumed lane chunk covers several points
        resumed=sum(p.points for p in done.values()),
    )
    if failures or skipped:
        report = PartialSweepReport(
            completed=completed,
            failed=tuple(failures),
            skipped=skipped,
            **report_kwargs,
        )
        raise PartialSweepError(report, values)
    return values, SweepReport(**report_kwargs)
