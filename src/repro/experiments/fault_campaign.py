"""Experiment ``fault_campaign`` — online fault-injection campaigns.

The paper evaluates reliability with faults fixed before cycle 0 and
latency with faults landed during warmup; a *campaign* instead replays
many seeded :class:`repro.faults.timeline.FaultTimeline` objects —
arrival-time-stamped permanent and transient fault events drawn from the
Section VII FIT model's arrival process — against live traffic, and
measures the temporal story the static experiments cannot see:

* **detection latency** — fault landing to the first watched counter
  moving (mechanism counters on the protected router, blocked-pipeline
  symptoms elsewhere);
* **time-to-recover** — landing to the first flit demonstrably served
  by the reconfigured datapath;
* **in-flight exposure** — flits buffered in the hit router at landing
  (the traffic at risk during reconfiguration) and flits stranded in
  never-recovered routers at end of run;
* **post-fault saturation shift** — measured latency under the campaign
  vs the fault-free reference of the same traffic.

Each timeline is one sweep point of the resilient runtime: checkpointed
the moment it finishes, resumable after a kill, watchdogged.  Timelines
mutate the fabric mid-run (heals / reconfiguration), which the batched
lane engine cannot express — ``repro.network.batched.supports`` declines
them via the factory's ``mutates_fabric`` marker and the sweep layer
falls back to the per-point event engine, so the existing
``run_lane_sweep`` reporting covers the campaign with zero new plumbing.

The **degradation-over-lifetime report** joins the FIT model back in:
the per-router failure rate converts measured per-event recovery into
expected yearly fault counts, downtime and flit loss per router kind,
with analytic BulletProof and Vicis rows for the comparison designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..config import NetworkConfig
from ..faults.schedule import TimelineSpec, make_schedule
from ..faults.timeline import CYCLES_PER_HOUR_1GHZ
from .latency import QUICK_CONFIG, LatencyConfig, suite_traffic
from .report import ExperimentResult, take_legacy
from .resilient import sweep_runtime

try:  # dataclasses.replace via the config helper
    from ..config import replace
except ImportError:  # pragma: no cover
    from dataclasses import replace

#: hours in a (non-leap) year, for the lifetime join
HOURS_PER_YEAR = 8760.0

#: router kinds the campaign simulates live (the analytic comparison
#: designs — BulletProof, Vicis — join the report as model rows)
DEFAULT_ROUTER_KINDS = ("baseline", "protected", "roco")


@dataclass(frozen=True)
class CampaignConfig:
    """Unified-API config of the online fault-injection campaign.

    ``timeline`` is the *template* spec: timeline ``t`` of the campaign
    runs ``replace(timeline, seed=timeline.seed + t)``, so a campaign is
    fully described by the template plus ``timelines`` — submittable as
    JSON to :mod:`repro.service` and cache-keyed soundly.  Every router
    kind replays the *same* timelines (same seeds, same traffic), so
    per-kind rows differ only by the router's recovery behaviour.
    """

    timelines: int = 12
    router_kinds: tuple[str, ...] = DEFAULT_ROUTER_KINDS
    timeline: TimelineSpec = TimelineSpec()
    app: str = "ocean"
    latency: Optional[LatencyConfig] = None
    #: simulated-hours join: cycles per wall-clock hour of the modelled
    #: silicon (1 GHz by default); only the lifetime report uses it
    cycles_per_hour: float = CYCLES_PER_HOUR_1GHZ
    #: execution engine for the sweep layer; timeline points always fall
    #: back to the event engine (``mutates_fabric``), so this only
    #: affects the fault-free reference points
    engine: str = "batched"


def campaign_schedule(net: NetworkConfig, spec: TimelineSpec):
    """Build one campaign timeline (module-level, picklable factory)."""
    return make_schedule(spec, config=net.router, num_routers=net.num_nodes)


#: timelines heal/reconfigure mid-run: the batched lane engine declines
#: this factory (``repro.network.batched.supports``) and the sweep layer
#: runs its points on the per-point event engine
campaign_schedule.mutates_fabric = True  # type: ignore[attr-defined]


def run(
    config: Optional[CampaignConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``out_dir``/``resume`` attach the resilient runtime: every finished
    timeline is checkpointed and a killed campaign resumes bit-identical
    at timeline granularity.
    """
    if legacy:
        take_legacy("fault_campaign", legacy, {"timelines", "cfg"})
        base = config or CampaignConfig()
        config = replace(
            base,
            timelines=legacy.get("timelines", base.timelines),
            latency=legacy.get("cfg", base.latency),
        )
    config = config or CampaignConfig()
    cfg = config.latency
    if seed is not None:
        cfg = replace(cfg or QUICK_CONFIG, seed=seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(config, cfg, jobs)


def _run_experiment(
    config: CampaignConfig,
    cfg: LatencyConfig | None,
    jobs: Optional[int],
) -> ExperimentResult:
    from .parallel import LanePoint, run_lane_sweep

    if config.timelines < 1:
        raise ValueError("timelines must be >= 1")
    if not config.router_kinds:
        raise ValueError("router_kinds must not be empty")
    cfg = cfg or QUICK_CONFIG
    net = cfg.network()
    sim_config = cfg.simulation()
    specs = [
        replace(config.timeline, seed=config.timeline.seed + cfg.seed + t)
        for t in range(config.timelines)
    ]

    # one fault-free reference plus every timeline, per router kind; the
    # same seeds everywhere so kinds differ only in recovery behaviour
    points: list[LanePoint] = []
    placement: list[tuple[str, Optional[int]]] = []
    for kind in config.router_kinds:
        points.append(
            LanePoint(
                config=net,
                sim_config=sim_config,
                make_traffic=suite_traffic,
                traffic_args=(net, config.app, cfg.seed, cfg.rate_scale),
                make_schedule=None,
                schedule_args=(),
                router_kind=kind,
                label=f"{kind}/fault-free",
            )
        )
        placement.append((kind, None))
        for t, spec in enumerate(specs):
            points.append(
                LanePoint(
                    config=net,
                    sim_config=sim_config,
                    make_traffic=suite_traffic,
                    traffic_args=(
                        net, config.app, cfg.seed + t, cfg.rate_scale
                    ),
                    make_schedule=campaign_schedule,
                    schedule_args=(net, spec),
                    router_kind=kind,
                    label=f"{kind}/timeline-{t}",
                )
            )
            placement.append((kind, t))
    results, sweep_report = run_lane_sweep(
        points, jobs=jobs, engine=config.engine
    )

    per_kind = {k: _KindAccumulator(k) for k in config.router_kinds}
    for (kind, t), result in zip(placement, results):
        acc = per_kind[kind]
        if t is None:
            acc.take_reference(result)
        else:
            acc.take_timeline(result)

    rows = [
        acc.row(net, config.cycles_per_hour) for acc in per_kind.values()
    ]
    analytic = _analytic_rows(net, cfg.seed)

    res = ExperimentResult(
        "fault_campaign",
        "online fault timelines: detection, recovery, lifetime degradation"
        " (extension)",
    )
    for row in rows:
        k = row["kind"]
        res.add(f"{k}: fault events", row["events"], None)
        res.add(
            f"{k}: recovered fraction", round(row["recovered_frac"], 3), None
        )
        if row["mean_detection_latency"] is not None:
            res.add(
                f"{k}: mean detection latency",
                round(row["mean_detection_latency"], 1),
                None,
                unit="cycles",
            )
        if row["mean_time_to_recover"] is not None:
            res.add(
                f"{k}: mean time to recover",
                round(row["mean_time_to_recover"], 1),
                None,
                unit="cycles",
            )
        res.add(
            f"{k}: expected events per year",
            round(row["events_per_year"], 4),
            None,
        )
    res.add(
        "fault-free references carry no recovery log",
        all(acc.reference_recovery is None for acc in per_kind.values()),
        True,
    )
    res.add(
        "every timeline produced a recovery log",
        all(acc.missing_logs == 0 for acc in per_kind.values()),
        True,
    )
    landed = sum(row["events"] for row in rows)
    res.add("campaign delivered fault events", landed > 0, True)
    if "protected" in per_kind:
        prot = per_kind["protected"].row(net, config.cycles_per_hour)
        res.add(
            "protected mesh recovers from landed faults",
            prot["events"] == 0 or prot["recovered_frac"] > 0.0,
            True,
        )
    res.extras["rows"] = rows
    res.extras["degradation"] = {
        "simulated": rows,
        "analytic": analytic,
        "cycles_per_hour": config.cycles_per_hour,
        "timelines": config.timelines,
    }
    res.extras["sweep"] = sweep_report
    from .charts import curve

    years = [float(y) for y in range(1, 11)]
    ref = rows[0]
    res.extras["chart"] = curve(
        years,
        [y * ref["events_per_year"] for y in years],
        x_label="years",
        y_label=f"faults ({ref['kind']})",
    )
    return res


class _KindAccumulator:
    """Folds one router kind's reference + timeline results into a row."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.reference_latency = float("nan")
        self.reference_recovery: Optional[dict] = None
        self.runs = 0
        self.blocked = 0
        self.missing_logs = 0
        self.events = 0
        self.detected = 0
        self.recovered = 0
        self.healed = 0
        self.latent = 0
        self.exposed = 0
        self.stranded = 0
        self._det_sum = 0.0
        self._rec_sum = 0.0
        self._lat_sum = 0.0
        self._lat_n = 0

    def take_reference(self, result: Any) -> None:
        self.reference_latency = result.avg_network_latency
        self.reference_recovery = result.recovery

    def take_timeline(self, result: Any) -> None:
        self.runs += 1
        if result.blocked:
            self.blocked += 1
        else:
            self._lat_sum += result.avg_network_latency
            self._lat_n += 1
        rec = result.recovery
        if rec is None:
            self.missing_logs += 1
            return
        self.events += rec["events"]
        self.detected += rec["detected"]
        self.recovered += rec["recovered"]
        self.healed += rec["healed"]
        self.latent += rec["latent"]
        self.exposed += rec["exposed_flits"]
        self.stranded += rec["stranded_flits"]
        if rec["mean_detection_latency"] is not None:
            self._det_sum += rec["mean_detection_latency"] * rec["detected"]
        if rec["mean_time_to_recover"] is not None:
            self._rec_sum += rec["mean_time_to_recover"] * rec["recovered"]

    def row(self, net: NetworkConfig, cycles_per_hour: float) -> dict:
        """One degradation-report row: measured recovery + FIT join."""
        fit = _fit_per_router(net, protected=self.kind == "protected")
        rate_per_hour = net.num_nodes * fit / 1e9
        mtbf_hours = 1.0 / rate_per_hour
        events_per_year = HOURS_PER_YEAR / mtbf_hours
        mean_det = self._det_sum / self.detected if self.detected else None
        mean_rec = self._rec_sum / self.recovered if self.recovered else None
        campaign_latency = (
            self._lat_sum / self._lat_n if self._lat_n else float("nan")
        )
        saturation_shift = (
            campaign_latency / self.reference_latency - 1.0
            if self._lat_n and self.reference_latency == self.reference_latency
            else None
        )
        downtime_s = (
            events_per_year
            * (self.recovered / self.events)
            * (mean_rec / cycles_per_hour)
            * 3600.0
            if self.events and mean_rec is not None
            else 0.0
        )
        return {
            "kind": self.kind,
            "analytic": False,
            "runs": self.runs,
            "blocked_runs": self.blocked,
            "events": self.events,
            "detected_frac": self.detected / self.events if self.events else 0.0,
            "recovered_frac": (
                self.recovered / self.events if self.events else 0.0
            ),
            "healed": self.healed,
            "latent": self.latent,
            "mean_detection_latency": mean_det,
            "mean_time_to_recover": mean_rec,
            "exposed_flits": self.exposed,
            "stranded_flits": self.stranded,
            "fault_free_latency": self.reference_latency,
            "campaign_latency": campaign_latency,
            "saturation_shift": saturation_shift,
            "fit_per_router": fit,
            "network_mtbf_hours": mtbf_hours,
            "events_per_year": events_per_year,
            "recovery_downtime_s_per_year": downtime_s,
            "stranded_flits_per_year": (
                events_per_year * self.stranded / self.events
                if self.events
                else 0.0
            ),
        }


def _fit_per_router(net: NetworkConfig, *, protected: bool) -> float:
    """Per-router SOFR from the Section VII stage inventories."""
    from ..reliability.stages import (
        RouterGeometry,
        baseline_stages,
        correction_stages,
        total_fit,
    )

    geom = RouterGeometry.from_mesh(
        net.num_nodes,
        num_ports=net.router.num_ports,
        num_vcs=net.router.num_vcs,
    )
    fit = total_fit(baseline_stages(geom))
    if protected:
        fit += total_fit(correction_stages(geom))
    return fit


def _analytic_rows(net: NetworkConfig, seed: int) -> list[dict]:
    """Model rows for the comparison designs (no live simulation)."""
    from ..comparison import BulletProofModel, VicisModel

    fit = _fit_per_router(net, protected=False)
    mtbf_hours = 1e9 / (net.num_nodes * fit)
    rows = []
    for name, model in (
        ("bulletproof", BulletProofModel()),
        ("vicis", VicisModel()),
    ):
        mean_faults = float(
            model.monte_carlo_faults_to_failure(trials=2000, rng=seed)
        )
        rows.append(
            {
                "kind": name,
                "analytic": True,
                "mean_faults_to_failure": mean_faults,
                "spf": model.spf(),
                "area_overhead": model.area_overhead,
                "events_per_year": HOURS_PER_YEAR / mtbf_hours,
                "expected_years_to_failure": (
                    mean_faults * mtbf_hours / HOURS_PER_YEAR
                ),
            }
        )
    return rows
