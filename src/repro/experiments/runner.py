"""Experiment CLI: ``python -m repro.experiments <name> [--quick]``.

``all`` runs everything (the latency figures take minutes at paper scale;
``--quick`` switches them to a reduced 4x4 configuration).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import (
    area_power,
    critical_path,
    design_space,
    detection_latency,
    energy,
    fault_sweep,
    fig7,
    fig8,
    load_latency,
    mttf,
    mttf_sensitivity,
    network_reliability,
    reliability_curves,
    spf_sweep,
    table1,
    table2,
    table3,
)
from .latency import LatencyConfig, QUICK_CONFIG
from .report import ExperimentResult


def _fig7(quick: bool) -> ExperimentResult:
    return fig7.run(cfg=QUICK_CONFIG if quick else None)


def _fig8(quick: bool) -> ExperimentResult:
    return fig8.run(cfg=QUICK_CONFIG if quick else None)


def _load_latency(quick: bool) -> ExperimentResult:
    if quick:
        return load_latency.run(rates=(0.04, 0.12), measure=1500)
    return load_latency.run()


EXPERIMENTS: dict[str, Callable[[bool], ExperimentResult]] = {
    "table1": lambda quick: table1.run(),
    "table2": lambda quick: table2.run(),
    "mttf": lambda quick: mttf.run(mc_samples=20_000 if quick else 100_000),
    "table3": lambda quick: table3.run(mc_trials=200 if quick else 1000),
    "spf_sweep": lambda quick: spf_sweep.run(),
    "area_power": lambda quick: area_power.run(),
    "critical_path": lambda quick: critical_path.run(),
    "fig7": _fig7,
    "fig8": _fig8,
    # extensions beyond the paper's artefacts
    "load_latency": _load_latency,
    "network_reliability": lambda quick: network_reliability.run(
        trials=60 if quick else 300
    ),
    "reliability_curves": lambda quick: reliability_curves.run(),
    "energy": lambda quick: energy.run(
        cfg=QUICK_CONFIG if quick else LatencyConfig()
    ),
    "detection_latency": lambda quick: detection_latency.run(
        measure_cycles=1500 if quick else 4000
    ),
    "fault_sweep": lambda quick: fault_sweep.run(
        fault_counts=(0, 8, 24) if quick else None
    ),
    "design_space": lambda quick: design_space.run(
        vc_counts=(2, 4) if quick else None,
        buffer_depths=(2, 4) if quick else None,
        measure=1000 if quick else 2000,
    ),
    "mttf_sensitivity": lambda quick: mttf_sensitivity.run(),
}


def run_experiment(name: str, quick: bool = False) -> ExperimentResult:
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for the simulation-heavy experiments",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        result = run_experiment(name, quick=args.quick)
        print(result.format())
        chart = result.extras.get("chart")
        if chart:
            print()
            print(chart)
        print(f"  [{time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
