"""Experiment CLI: ``python -m repro.experiments <name> [--quick] [--jobs N]``.

``all`` runs everything (the latency figures take minutes at paper scale;
``--quick`` switches them to a reduced 4x4 configuration).  ``--jobs N``
shards the sweep-shaped experiments (figures, Monte-Carlo campaigns,
load/fault/design sweeps) across N worker processes via
:mod:`repro.experiments.parallel`; results are bit-identical to a serial
run (``--jobs 0`` uses every core).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional

from . import (
    area_power,
    critical_path,
    design_space,
    detection_latency,
    energy,
    fault_sweep,
    fig7,
    fig8,
    load_latency,
    mttf,
    mttf_sensitivity,
    network_reliability,
    reliability_curves,
    spf_sweep,
    table1,
    table2,
    table3,
)
from .latency import LatencyConfig, QUICK_CONFIG
from .report import ExperimentResult


def _fig7(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    return fig7.run(cfg=QUICK_CONFIG if quick else None, jobs=jobs)


def _fig8(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    return fig8.run(cfg=QUICK_CONFIG if quick else None, jobs=jobs)


def _load_latency(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    if quick:
        return load_latency.run(rates=(0.04, 0.12), measure=1500, jobs=jobs)
    return load_latency.run(jobs=jobs)


#: registry of all artefacts: name -> fn(quick, jobs).  Experiments that
#: are not sweep-shaped (single analytic computation) ignore ``jobs``.
EXPERIMENTS: dict[str, Callable[[bool, Optional[int]], ExperimentResult]] = {
    "table1": lambda quick, jobs: table1.run(),
    "table2": lambda quick, jobs: table2.run(),
    "mttf": lambda quick, jobs: mttf.run(
        mc_samples=20_000 if quick else 100_000
    ),
    "table3": lambda quick, jobs: table3.run(
        mc_trials=200 if quick else 1000, jobs=jobs
    ),
    "spf_sweep": lambda quick, jobs: spf_sweep.run(),
    "area_power": lambda quick, jobs: area_power.run(),
    "critical_path": lambda quick, jobs: critical_path.run(),
    "fig7": _fig7,
    "fig8": _fig8,
    # extensions beyond the paper's artefacts
    "load_latency": _load_latency,
    "network_reliability": lambda quick, jobs: network_reliability.run(
        trials=60 if quick else 300, jobs=jobs
    ),
    "reliability_curves": lambda quick, jobs: reliability_curves.run(),
    "energy": lambda quick, jobs: energy.run(
        cfg=QUICK_CONFIG if quick else LatencyConfig()
    ),
    "detection_latency": lambda quick, jobs: detection_latency.run(
        measure_cycles=1500 if quick else 4000
    ),
    "fault_sweep": lambda quick, jobs: fault_sweep.run(
        fault_counts=(0, 8, 24) if quick else None, jobs=jobs
    ),
    "design_space": lambda quick, jobs: design_space.run(
        vc_counts=(2, 4) if quick else None,
        buffer_depths=(2, 4) if quick else None,
        measure=1000 if quick else 2000,
        jobs=jobs,
    ),
    "mttf_sensitivity": lambda quick, jobs: mttf_sensitivity.run(),
}

#: the experiments for which ``--jobs`` changes execution (sweep-shaped)
PARALLEL_EXPERIMENTS = frozenset(
    {
        "fig7",
        "fig8",
        "fault_sweep",
        "load_latency",
        "design_space",
        "network_reliability",
        "table3",
    }
)


def run_experiment(
    name: str, quick: bool = False, jobs: Optional[int] = None
) -> ExperimentResult:
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick, jobs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for the simulation-heavy experiments",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep-shaped experiments "
        "(default: serial; 0 = all cores; results are bit-identical "
        "to a serial run)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0")

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.time()
        result = run_experiment(name, quick=args.quick, jobs=args.jobs)
        print(result.format())
        chart = result.extras.get("chart")
        if chart:
            print()
            print(chart)
        sweep_report = result.extras.get("sweep")
        if sweep_report is not None and args.jobs is not None:
            print(f"  {sweep_report.format()}")
        print(f"  [{time.time() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
