"""Experiment CLI: ``python -m repro.experiments <name> [--quick] [--jobs N]``.

``all`` runs everything (the latency figures take minutes at paper scale;
``--quick`` switches them to a reduced 4x4 configuration).  ``--jobs N``
shards the sweep-shaped experiments (figures, Monte-Carlo campaigns,
load/fault/design sweeps) across N worker processes via
:mod:`repro.experiments.parallel`; results are bit-identical to a serial
run (``--jobs 0`` uses every core).

Observability (:mod:`repro.observability`, see ``docs/observability.md``):
``--metrics-out metrics.json`` collects the per-router per-stage metrics
registry (merged deterministically across shards and experiments) and the
merged snapshot also lands in ``ExperimentResult.extras["metrics"]``;
``--trace-out trace.json`` records flit-lifecycle events and writes a
Chrome ``trace_event`` file loadable in ``chrome://tracing`` / Perfetto;
``--profile`` samples per-phase wall time inside the simulator loop.

An experiment that raises — including inside a worker shard of a parallel
sweep — makes the process exit non-zero; with ``all``, the remaining
experiments still run and the failures are listed on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Optional

from .. import observability
from ..observability import merge_exports
from ..observability.report import render_text
from ..observability.trace import write_chrome_trace

from . import (
    area_power,
    critical_path,
    design_space,
    detection_latency,
    energy,
    fault_sweep,
    fig7,
    fig8,
    load_latency,
    mttf,
    mttf_sensitivity,
    network_reliability,
    reliability_curves,
    spf_sweep,
    table1,
    table2,
    table3,
)
from .latency import LatencyConfig, QUICK_CONFIG
from .report import ExperimentResult


def _fig7(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    return fig7.run(cfg=QUICK_CONFIG if quick else None, jobs=jobs)


def _fig8(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    return fig8.run(cfg=QUICK_CONFIG if quick else None, jobs=jobs)


def _load_latency(quick: bool, jobs: Optional[int]) -> ExperimentResult:
    if quick:
        return load_latency.run(rates=(0.04, 0.12), measure=1500, jobs=jobs)
    return load_latency.run(jobs=jobs)


#: registry of all artefacts: name -> fn(quick, jobs).  Experiments that
#: are not sweep-shaped (single analytic computation) ignore ``jobs``.
EXPERIMENTS: dict[str, Callable[[bool, Optional[int]], ExperimentResult]] = {
    "table1": lambda quick, jobs: table1.run(),
    "table2": lambda quick, jobs: table2.run(),
    "mttf": lambda quick, jobs: mttf.run(
        mc_samples=20_000 if quick else 100_000
    ),
    "table3": lambda quick, jobs: table3.run(
        mc_trials=200 if quick else 1000, jobs=jobs
    ),
    "spf_sweep": lambda quick, jobs: spf_sweep.run(),
    "area_power": lambda quick, jobs: area_power.run(),
    "critical_path": lambda quick, jobs: critical_path.run(),
    "fig7": _fig7,
    "fig8": _fig8,
    # extensions beyond the paper's artefacts
    "load_latency": _load_latency,
    "network_reliability": lambda quick, jobs: network_reliability.run(
        trials=60 if quick else 300, jobs=jobs
    ),
    "reliability_curves": lambda quick, jobs: reliability_curves.run(),
    "energy": lambda quick, jobs: energy.run(
        cfg=QUICK_CONFIG if quick else LatencyConfig()
    ),
    "detection_latency": lambda quick, jobs: detection_latency.run(
        measure_cycles=1500 if quick else 4000
    ),
    "fault_sweep": lambda quick, jobs: fault_sweep.run(
        fault_counts=(0, 8, 24) if quick else None, jobs=jobs
    ),
    "design_space": lambda quick, jobs: design_space.run(
        vc_counts=(2, 4) if quick else None,
        buffer_depths=(2, 4) if quick else None,
        measure=1000 if quick else 2000,
        jobs=jobs,
    ),
    "mttf_sensitivity": lambda quick, jobs: mttf_sensitivity.run(),
}

#: the experiments for which ``--jobs`` changes execution (sweep-shaped)
PARALLEL_EXPERIMENTS = frozenset(
    {
        "fig7",
        "fig8",
        "fault_sweep",
        "load_latency",
        "design_space",
        "network_reliability",
        "table3",
    }
)


def run_experiment(
    name: str, quick: bool = False, jobs: Optional[int] = None
) -> ExperimentResult:
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(quick, jobs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for the simulation-heavy experiments",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep-shaped experiments "
        "(default: serial; 0 = all cores; results are bit-identical "
        "to a serial run)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="collect the observability metrics registry and write the "
        "merged (shard-order-independent) snapshot as JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record flit-lifecycle events and write a Chrome trace_event "
        "JSON file (load in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="events retained per simulation in the trace ring buffer "
        f"(default {observability.ObservabilityConfig().trace_capacity})",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample per-phase wall time inside the simulator loop and "
        "print the breakdown",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.trace_capacity is not None and args.trace_capacity < 1:
        parser.error("--trace-capacity must be >= 1")

    obs_changes: dict = {}
    if args.metrics_out:
        obs_changes["metrics"] = True
    if args.trace_out:
        obs_changes["trace"] = True
    if args.trace_capacity is not None:
        obs_changes["trace_capacity"] = args.trace_capacity
    if args.profile:
        obs_changes["profile"] = True
    if obs_changes:
        observability.configure(**obs_changes)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failures: list[str] = []
    collected: list = []  # (label, export) pairs across experiments
    for name in names:
        t0 = time.time()
        try:
            result = run_experiment(name, quick=args.quick, jobs=args.jobs)
        except Exception as exc:
            failures.append(name)
            print(f"experiment {name} FAILED: {exc}", file=sys.stderr)
            continue
        sweep_report = result.extras.get("sweep")
        merged = getattr(sweep_report, "observability", None)
        if merged is not None:
            result.extras["metrics"] = merged.get("metrics")
            collected.extend(
                (f"{name}:{label}" if label else name, {"trace": snap})
                for label, snap in merged.get("traces") or []
            )
            if merged.get("metrics"):
                collected.append((name, {"metrics": merged["metrics"]}))
            if merged.get("profile"):
                collected.append((name, {"profile": merged["profile"]}))
        print(result.format())
        chart = result.extras.get("chart")
        if chart:
            print()
            print(chart)
        if sweep_report is not None and args.jobs is not None:
            print(f"  {sweep_report.format()}")
        print(f"  [{time.time() - t0:.1f}s]\n")

    if obs_changes:
        merged_all = merge_exports(collected) or {
            "metrics": None, "traces": [], "profile": None,
        }
        print(render_text(merged_all))
        if args.metrics_out:
            with open(args.metrics_out, "w") as fp:
                json.dump(merged_all.get("metrics"), fp, sort_keys=True, indent=2)
            print(f"  metrics written to {args.metrics_out}")
        if args.trace_out:
            with open(args.trace_out, "w") as fp:
                n = write_chrome_trace(
                    fp,
                    [
                        (label, snap["trace"]["events"])
                        for label, snap in collected
                        if snap.get("trace")
                    ],
                )
            print(f"  {n} trace events written to {args.trace_out}")

    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
