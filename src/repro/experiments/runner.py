"""Experiment CLI: ``python -m repro.experiments <name> [--quick] [--jobs N]``.

``all`` runs everything (the latency figures take minutes at paper scale;
``--quick`` switches them to a reduced 4x4 configuration).  ``--jobs N``
shards the sweep-shaped experiments (figures, Monte-Carlo campaigns,
load/fault/design sweeps) across N worker processes via
:mod:`repro.experiments.parallel`; results are bit-identical to a serial
run (``--jobs 0`` uses every core).

Resilience (:mod:`repro.experiments.resilient`, see ``docs/resilience.md``):
``--out-dir RUN_DIR`` checkpoints every completed sweep point to a durable
run directory the moment it finishes; ``--resume RUN_DIR`` continues a
killed run, re-executing only the missing points (bit-identical to an
uninterrupted run); ``--retries N`` retries crashed/hung points with
exponential backoff; ``--task-timeout S`` arms a per-point watchdog that
kills and replaces stuck workers.  With ``all``, each experiment
checkpoints into its own ``RUN_DIR/<name>/`` subdirectory.  Exit codes:
0 all good, 1 hard failure, 3 partial success (some points completed and
were checkpointed; some exhausted their retries — rerun with ``--resume``
after fixing the cause).

Every experiment module exposes the same unified entry point::

    run(config=None, *, jobs=None, seed=None, out_dir=None, resume=None)

and the registry below records how to build each module's quick/default
config object.  The old per-module keyword signatures still work through
a ``DeprecationWarning`` shim and will be removed in 2.0.

Observability (:mod:`repro.observability`, see ``docs/observability.md``):
``--metrics-out metrics.json`` collects the per-router per-stage metrics
registry (merged deterministically across shards and experiments) and the
merged snapshot also lands in ``ExperimentResult.extras["metrics"]``;
``--trace-out trace.json`` records flit-lifecycle events and writes a
Chrome ``trace_event`` file loadable in ``chrome://tracing`` / Perfetto;
``--profile`` samples per-phase wall time inside the simulator loop.

An experiment that raises — including inside a worker shard of a parallel
sweep — makes the process exit non-zero; with ``all``, the remaining
experiments still run and the failures are listed on stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .. import observability
from ..observability import merge_exports
from ..observability.report import render_text
from ..observability.trace import write_chrome_trace
from . import (
    area_power,
    critical_path,
    design_space,
    detection_latency,
    energy,
    fault_campaign,
    fault_sweep,
    fig7,
    fig8,
    load_latency,
    mttf,
    mttf_sensitivity,
    network_reliability,
    reliability_curves,
    resilient,
    spf_sweep,
    table1,
    table2,
    table3,
)
from .latency import QUICK_CONFIG, LatencyConfig
from .parallel import PartialSweepError
from .report import ExperimentResult


def _none() -> None:
    return None


@dataclass(frozen=True)
class ExperimentEntry:
    """Registry entry: the experiment module plus its CLI config recipes.

    ``quick_config``/``default_config`` build the config object passed to
    the module's unified ``run()``; both default to ``None`` (the
    module's own defaults).  Entries are callable as ``entry(quick,
    jobs)`` so code that treats the registry as plain
    ``fn(quick, jobs)`` callables (including tests that monkeypatch
    entries with such functions) keeps working.
    """

    module: Any
    quick_config: Callable[[], Any] = field(default=_none)
    default_config: Callable[[], Any] = field(default=_none)

    def __call__(
        self,
        quick: bool,
        jobs: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        out_dir: Optional[str] = None,
        resume: Optional[str] = None,
    ) -> ExperimentResult:
        config = (self.quick_config if quick else self.default_config)()
        return self.module.run(
            config, jobs=jobs, seed=seed, out_dir=out_dir, resume=resume
        )


#: registry of all artefacts: name -> entry(quick, jobs).  Experiments
#: that are not sweep-shaped (single analytic computation) ignore
#: ``jobs``.  Entries may be replaced with plain ``fn(quick, jobs)``
#: callables (the pre-unified-API registry shape); ``run_experiment``
#: still calls those with two positional arguments.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": ExperimentEntry(table1),
    "table2": ExperimentEntry(table2),
    "mttf": ExperimentEntry(
        mttf, quick_config=lambda: mttf.MTTFConfig(mc_samples=20_000)
    ),
    "table3": ExperimentEntry(
        table3, quick_config=lambda: table3.Table3Config(mc_trials=200)
    ),
    "spf_sweep": ExperimentEntry(spf_sweep),
    "area_power": ExperimentEntry(area_power),
    "critical_path": ExperimentEntry(critical_path),
    "fig7": ExperimentEntry(fig7, quick_config=lambda: QUICK_CONFIG),
    "fig8": ExperimentEntry(fig8, quick_config=lambda: QUICK_CONFIG),
    # extensions beyond the paper's artefacts
    "load_latency": ExperimentEntry(
        load_latency,
        quick_config=lambda: load_latency.LoadLatencyConfig(
            rates=(0.04, 0.12), measure=1500
        ),
    ),
    "network_reliability": ExperimentEntry(
        network_reliability,
        quick_config=lambda: network_reliability.NetworkReliabilityConfig(
            trials=60
        ),
    ),
    "reliability_curves": ExperimentEntry(reliability_curves),
    "energy": ExperimentEntry(
        energy,
        quick_config=lambda: energy.EnergyConfig(latency=QUICK_CONFIG),
        default_config=lambda: energy.EnergyConfig(latency=LatencyConfig()),
    ),
    "detection_latency": ExperimentEntry(
        detection_latency,
        quick_config=lambda: detection_latency.DetectionLatencyConfig(
            measure_cycles=1500
        ),
    ),
    "fault_sweep": ExperimentEntry(
        fault_sweep,
        quick_config=lambda: fault_sweep.FaultSweepConfig(
            fault_counts=(0, 8, 24)
        ),
    ),
    "fault_campaign": ExperimentEntry(
        fault_campaign,
        quick_config=lambda: fault_campaign.CampaignConfig(
            timelines=3,
            router_kinds=("baseline", "protected"),
            timeline=fault_campaign.TimelineSpec(
                events=4, mean_interval=600.0
            ),
        ),
    ),
    "design_space": ExperimentEntry(
        design_space,
        quick_config=lambda: design_space.DesignSpaceConfig(
            vc_counts=(2, 4), buffer_depths=(2, 4), measure=1000
        ),
    ),
    "mttf_sensitivity": ExperimentEntry(mttf_sensitivity),
}

#: the experiments for which ``--jobs`` changes execution (sweep-shaped)
PARALLEL_EXPERIMENTS = frozenset(
    {
        "fig7",
        "fig8",
        "fault_campaign",
        "fault_sweep",
        "load_latency",
        "design_space",
        "network_reliability",
        "table3",
    }
)


def run_experiment(
    name: str,
    quick: bool = False,
    jobs: Optional[int] = None,
    *,
    seed: Optional[int] = None,
    out_dir: Optional[str] = None,
    resume: Optional[str] = None,
) -> ExperimentResult:
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if isinstance(fn, ExperimentEntry):
        return fn(quick, jobs, seed=seed, out_dir=out_dir, resume=resume)
    # pre-unified-API registry shape: a plain fn(quick, jobs) callable
    return fn(quick, jobs)


def _experiment_dirs(
    name: str, many: bool, out_dir: Optional[str], resume: Optional[str]
) -> tuple[Optional[str], Optional[str]]:
    """Resolve the (out_dir, resume) pair for one experiment of a run.

    With ``all``, each experiment checkpoints into its own subdirectory
    of the run directory.  On ``--resume``, a subdirectory that was never
    started simply begins fresh (an empty directory resumes to "nothing
    done yet").
    """
    if resume is not None:
        return None, os.path.join(resume, name) if many else resume
    if out_dir is not None:
        return (os.path.join(out_dir, name) if many else out_dir), None
    return None, None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced configuration for the simulation-heavy experiments",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sweep-shaped experiments "
        "(default: serial; 0 = all cores; results are bit-identical "
        "to a serial run)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the experiment's base seed (unified API seed=)",
    )
    parser.add_argument(
        "--out-dir",
        metavar="RUN_DIR",
        default=None,
        help="checkpoint every completed sweep point into RUN_DIR "
        "(durable, append-only; see docs/resilience.md); with 'all', "
        "each experiment uses RUN_DIR/<name>/",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_DIR",
        default=None,
        help="continue a killed run from its RUN_DIR: completed points "
        "are reloaded from the checkpoint, only the missing ones are "
        "re-executed (bit-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry a crashed/hung sweep point up to N times with "
        "exponential backoff before recording it as failed "
        "(default: 2 when a resilience flag is used)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point watchdog: a point running longer is killed, its "
        "worker replaced, and the point retried per --retries",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="collect the observability metrics registry and write the "
        "merged (shard-order-independent) snapshot as JSON",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="record flit-lifecycle events and write a Chrome trace_event "
        "JSON file (load in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help="events retained per simulation in the trace ring buffer "
        f"(default {observability.ObservabilityConfig().trace_capacity})",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample per-phase wall time inside the simulator loop and "
        "print the breakdown",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.trace_capacity is not None and args.trace_capacity < 1:
        parser.error("--trace-capacity must be >= 1")
    if args.out_dir and args.resume:
        parser.error("--out-dir starts a fresh run; --resume continues one "
                      "(checkpointing continues into the same RUN_DIR) — "
                      "pass only one of them")
    if args.retries is not None and args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be > 0")

    obs_changes: dict = {}
    if args.metrics_out:
        obs_changes["metrics"] = True
    if args.trace_out:
        obs_changes["trace"] = True
    if args.trace_capacity is not None:
        obs_changes["trace_capacity"] = args.trace_capacity
    if args.profile:
        obs_changes["profile"] = True
    if obs_changes:
        observability.configure(**obs_changes)

    resilient_flags = (
        args.retries is not None
        or args.task_timeout is not None
        or args.out_dir is not None
        or args.resume is not None
    )
    if resilient_flags:
        retries = args.retries if args.retries is not None else 2
        resilient.configure(
            max_attempts=retries + 1, timeout_s=args.task_timeout
        )

    many = args.experiment == "all"
    names = sorted(EXPERIMENTS) if many else [args.experiment]
    failures: list[str] = []
    partials: list[str] = []
    collected: list = []  # (label, export) pairs across experiments
    try:
        for name in names:
            t0 = time.time()
            exp_out, exp_resume = _experiment_dirs(
                name, many, args.out_dir, args.resume
            )
            try:
                result = run_experiment(
                    name,
                    quick=args.quick,
                    jobs=args.jobs,
                    seed=args.seed,
                    out_dir=exp_out,
                    resume=exp_resume,
                )
            except PartialSweepError as exc:
                partials.append(name)
                print(f"experiment {name} PARTIAL:", file=sys.stderr)
                print(exc.report.format(), file=sys.stderr)
                continue
            except Exception as exc:
                failures.append(name)
                print(f"experiment {name} FAILED: {exc}", file=sys.stderr)
                continue
            sweep_report = result.extras.get("sweep")
            merged = getattr(sweep_report, "observability", None)
            if merged is not None:
                result.extras["metrics"] = merged.get("metrics")
                collected.extend(
                    (f"{name}:{label}" if label else name, {"trace": snap})
                    for label, snap in merged.get("traces") or []
                )
                if merged.get("metrics"):
                    collected.append((name, {"metrics": merged["metrics"]}))
                if merged.get("profile"):
                    collected.append((name, {"profile": merged["profile"]}))
            print(result.format())
            chart = result.extras.get("chart")
            if chart:
                print()
                print(chart)
            if sweep_report is not None and (
                args.jobs is not None or resilient_flags
            ):
                print(f"  {sweep_report.format()}")
            print(f"  [{time.time() - t0:.1f}s]\n")
    finally:
        if resilient_flags:
            resilient.reset()

    if obs_changes:
        merged_all = merge_exports(collected) or {
            "metrics": None, "traces": [], "profile": None,
        }
        print(render_text(merged_all))
        if args.metrics_out:
            with open(args.metrics_out, "w") as fp:
                json.dump(merged_all.get("metrics"), fp, sort_keys=True, indent=2)
            print(f"  metrics written to {args.metrics_out}")
        if args.trace_out:
            with open(args.trace_out, "w") as fp:
                n = write_chrome_trace(
                    fp,
                    [
                        (label, snap["trace"]["events"])
                        for label, snap in collected
                        if snap.get("trace")
                    ],
                )
            print(f"  {n} trace events written to {args.trace_out}")

    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    if partials:
        run_dir = args.resume or args.out_dir
        hint = f" — rerun with --resume {run_dir}" if run_dir else ""
        print(
            f"{len(partials)} experiment(s) partially completed: "
            f"{', '.join(partials)}{hint}",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
