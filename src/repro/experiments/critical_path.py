"""Experiment ``critical_path`` — Section VI-B: per-stage critical paths.

"critical paths of VA, SA and XB stages have increased by 20 %, 10 % and
25 %"; RC is negligible (spatial redundancy).
"""

from __future__ import annotations

from typing import Optional

from ..reliability.stages import RouterGeometry
from ..synthesis.timing import analyze_critical_path
from .report import ExperimentResult, coerce_geom

PAPER_OVERHEADS = {"RC": 0.0, "VA": 0.20, "SA": 0.10, "XB": 0.25}


def run(
    config: Optional[RouterGeometry] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`~repro.reliability.stages.RouterGeometry`;
    the old ``run(geom=...)`` keyword still works but is deprecated.
    The analysis is closed-form, so ``jobs``/``seed``/``out_dir``/
    ``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    geom = coerce_geom("critical_path", config, legacy) or RouterGeometry()
    rep = analyze_critical_path(geom)
    res = ExperimentResult(
        "critical_path", "Critical-path impact per stage (Section VI-B)"
    )
    for stage in ("RC", "VA", "SA", "XB"):
        note = "paper: 'negligible impact'" if stage == "RC" else ""
        res.add(
            f"{stage} critical-path increase",
            round(rep.overhead(stage), 3),
            PAPER_OVERHEADS[stage],
            note=note,
        )
        res.add(
            f"{stage} baseline path",
            round(rep.baseline_ps[stage], 1),
            None,
            unit="ps",
        )
    res.add(
        "baseline min clock period",
        round(rep.min_clock_period_baseline_ps, 1),
        None,
        unit="ps",
    )
    res.add(
        "protected min clock period",
        round(rep.min_clock_period_protected_ps, 1),
        None,
        unit="ps",
    )
    res.extras["report"] = rep
    return res
