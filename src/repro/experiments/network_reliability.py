"""Experiment ``network_reliability`` — fabric-level MTTF (extension).

Beyond the paper's per-router analysis: Monte-Carlo time-to-failure of
the whole 8x8 fabric for baseline vs protected routers — first router
lost, 4th router lost, and mesh disconnection (healthy routers no longer
all mutually reachable).  The protected router's ~6x per-router gain
compounds at fabric scale because the fabric's life is governed by its
*weakest* routers (a minimum over 64 samples), which redundancy lifts
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..config import NetworkConfig
from ..reliability.network_level import analyze_network_reliability
from .report import ExperimentResult, override_seed, take_legacy
from .resilient import sweep_runtime


@dataclass(frozen=True)
class NetworkReliabilityConfig:
    """Unified-API config of the fabric-level Monte Carlo."""

    trials: int = 300
    width: int = 8
    height: int = 8
    seed: int = 1


def run(
    config: Optional[NetworkReliabilityConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`NetworkReliabilityConfig`; the old
    ``run(trials=..., width=..., height=...)`` keywords still work but
    are deprecated.  ``out_dir``/``resume`` attach the resilient sweep
    runtime.
    """
    if legacy:
        take_legacy(
            "network_reliability", legacy, {"trials", "width", "height"}
        )
        config = replace(config or NetworkReliabilityConfig(), **legacy)
    config = override_seed(config or NetworkReliabilityConfig(), seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(config, jobs)


def _run_experiment(
    config: NetworkReliabilityConfig, jobs: Optional[int]
) -> ExperimentResult:
    trials, width, height = config.trials, config.width, config.height
    seed = config.seed
    net = NetworkConfig(width=width, height=height)
    base = analyze_network_reliability(
        net, "baseline", trials=trials, rng=seed, jobs=jobs
    )
    prot = analyze_network_reliability(
        net, "protected", trials=trials, rng=seed + 1, jobs=jobs
    )
    res = ExperimentResult(
        "network_reliability",
        f"{width}x{height} fabric-level MTTF, baseline vs protected (extension)",
    )
    for label, b, p in (
        ("first router failure", base.mean_first_failure, prot.mean_first_failure),
        (f"{base.k}-th router failure", base.mean_kth_failure, prot.mean_kth_failure),
        ("mesh disconnection", base.mean_disconnection, prot.mean_disconnection),
    ):
        res.add(f"baseline: {label}", round(b), None, unit="h")
        res.add(f"protected: {label}", round(p), None, unit="h")
        res.add(f"gain: {label}", round(p / b, 2), None)
    res.add(
        "protected gains >= 2x on every fabric metric",
        all(
            p / b >= 2.0
            for b, p in (
                (base.mean_first_failure, prot.mean_first_failure),
                (base.mean_kth_failure, prot.mean_kth_failure),
                (base.mean_disconnection, prot.mean_disconnection),
            )
        ),
        True,
    )
    res.extras["baseline"] = base
    res.extras["protected"] = prot
    res.extras["sweep"] = prot.sweep
    return res
