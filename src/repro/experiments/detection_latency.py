"""Experiment ``detection_latency`` — online fault observability (extension).

The paper assumes an existing detection mechanism (NoCAlert) and charges
+3 % area / +1 % power for it; this extension quantifies the *behavioural*
side of that assumption on our fabric: after a fault is injected, how
many cycles pass before live traffic first exercises the faulty
component (the earliest moment an invariant-checking detector can flag
it)?

Two regimes matter:

* **primary-resource faults** (RC unit, VA arbiter set, SA arbiter,
  crossbar mux) become observable as soon as traffic touches the
  resource — fast at moderate load;
* **correction-circuitry faults** (duplicate RC, bypass path, secondary
  path) are *latent spares*: invisible until their primary also fails —
  the classic latent-fault detection problem, reported here as the
  fraction of unobservable injections.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..config import NetworkConfig, RouterConfig, SimulationConfig
from ..core.protected_router import protected_router_factory
from ..faults.detection import NetworkDetector
from ..faults.injector import RandomFaultSchedule
from ..network.simulator import NoCSimulator
from ..traffic.generator import SyntheticTraffic
from .report import ExperimentResult, override_seed, take_legacy


@dataclass(frozen=True)
class DetectionLatencyConfig:
    """Unified-API config of the fault-observability experiment."""

    width: int = 4
    height: int = 4
    num_faults: int = 24
    injection_rate: float = 0.08
    measure_cycles: int = 4000
    seed: int = 1


def run(
    config: Optional[DetectionLatencyConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`DetectionLatencyConfig`; the old
    ``run(width=..., num_faults=..., ...)`` keywords still work but are
    deprecated.  The experiment instruments a single simulation, so
    ``jobs``/``out_dir``/``resume`` are accepted for API uniformity and
    ignored.
    """
    del jobs, out_dir, resume  # one instrumented simulation: nothing to shard
    if legacy:
        take_legacy(
            "detection_latency", legacy,
            {"width", "height", "num_faults", "injection_rate",
             "measure_cycles"},
        )
        config = replace(config or DetectionLatencyConfig(), **legacy)
    config = override_seed(config or DetectionLatencyConfig(), seed)
    return _run_experiment(config)


def _run_experiment(config: DetectionLatencyConfig) -> ExperimentResult:
    width, height = config.width, config.height
    num_faults = config.num_faults
    injection_rate = config.injection_rate
    measure_cycles = config.measure_cycles
    seed = config.seed
    net = NetworkConfig(
        width=width, height=height, router=RouterConfig(num_vcs=4)
    )
    injector = RandomFaultSchedule(
        net.router,
        net.num_nodes,
        mean_interval=measure_cycles / (2 * num_faults),
        num_faults=num_faults,
        rng=seed + 31,
        first_fault_at=10,
        avoid_failure=True,
    )
    sim = NoCSimulator(
        net,
        SimulationConfig(
            warmup_cycles=0,
            measure_cycles=measure_cycles,
            drain_cycles=4000,
            seed=seed,
        ),
        SyntheticTraffic(net, injection_rate=injection_rate, rng=seed),
        router_factory=protected_router_factory(net),
        fault_schedule=injector,
    )
    detector = NetworkDetector(sim.routers)

    # wrap the step to register watches as faults land and poll the
    # detectors each cycle
    planned = dict()
    for cycle, site in injector.planned:
        planned.setdefault(cycle, []).append(site)
    original = sim._step
    unobservable = 0

    def stepped(cycle: int, inject_traffic: bool) -> None:
        original(cycle, inject_traffic)
        for c in list(planned):
            if c <= cycle:
                for site in planned.pop(c):
                    nonlocal_unobs = detector.watch(site, cycle)
                    if not nonlocal_unobs:
                        nonlocal_count[0] += 1
        detector.poll(cycle)

    nonlocal_count = [0]
    sim._step = stepped
    result = sim.run()
    unobservable = nonlocal_count[0]

    events = detector.events
    latencies = np.array([e.detection_latency for e in events], dtype=float)
    res = ExperimentResult(
        "detection_latency",
        "online fault observability under live traffic (extension)",
    )
    res.add("faults injected", result.faults_injected, num_faults)
    res.add(
        "latent-spare injections (unobservable)",
        unobservable,
        None,
        note="duplicate-RC / bypass / secondary-path sites stay invisible "
        "until their primary also fails",
    )
    res.add("observable faults detected", len(events), None)
    res.add(
        "still-latent at end of run",
        detector.pending,
        None,
        note="faulty components no traffic happened to exercise",
    )
    if len(latencies):
        res.add("mean detection latency", round(float(latencies.mean()), 1),
                None, unit="cycles")
        res.add("median detection latency",
                round(float(np.median(latencies)), 1), None, unit="cycles")
        res.add("max detection latency", int(latencies.max()), None,
                unit="cycles")
    res.add(
        "every observed detection after injection",
        bool(len(latencies) == 0 or latencies.min() >= 0),
        True,
    )
    res.extras["events"] = events
    res.extras["detector"] = detector
    return res
