"""Deterministic multiprocessing sweep engine (``repro.experiments.parallel``).

Every sweep-shaped artefact of the reproduction — Figures 7/8 (one
simulation per app x fault-state), Table III's Monte-Carlo campaign, the
``fault_sweep``/``load_latency``/``design_space`` extensions and the
fabric-level reliability Monte Carlo — reduces to an *embarrassingly
parallel* list of independent points.  This module runs such a list
across worker processes while guaranteeing **bit-identical results to a
serial run**:

* Each point is a :class:`SweepTask`: a picklable module-level callable
  plus its arguments, tagged with its position in the sweep.  Results
  are always reassembled in task order, so reductions downstream see the
  same operand order regardless of how the work was sharded.
* All randomness is derived *per point* via
  :func:`numpy.random.SeedSequence.spawn` (:func:`spawn_seeds`) **before**
  execution, never from a generator shared across points.  A point's
  random stream therefore depends only on the root seed and the point's
  index — not on which worker ran it, or in what order.

Together these two properties make ``jobs=N`` a pure wall-clock knob:
``tests/test_parallel.py`` pins serial == parallel equality end-to-end.

Workers are plain :mod:`multiprocessing` pools (fork start method where
available — cheap on Linux, no re-import per worker).  Each worker runs
one *shard* (a strided slice of the task list) and reports points
completed, wall time, and simulated cycles; the per-shard
:class:`ShardReport` list is surfaced through
``ExperimentResult.extras["sweep"]`` so the CLI can print a timing
breakdown after every parallel run.

When a resilient runtime is active
(:func:`repro.experiments.resilient.sweep_runtime` — installed by the
unified ``run(..., out_dir=..., resume=...)`` experiment entry points and
the ``--out-dir``/``--resume``/``--retries``/``--task-timeout`` CLI
flags), :func:`run_sweep` transparently reroutes to the checkpointed,
retrying executor in :mod:`repro.experiments.resilient`; results stay
bit-identical, and exhausted retries surface as
:class:`PartialSweepError` (carrying a :class:`PartialSweepReport`)
instead of discarding the completed points.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import NetworkConfig, SimulationConfig
from ..network import warm
from ..observability import merge_exports


# ----------------------------------------------------------------------
# task / result containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepTask:
    """One independent sweep point.

    ``fn`` must be a module-level (picklable) callable; ``args`` and
    ``kwargs`` must be picklable too.  ``index`` is the point's position
    in the sweep — results are reassembled by it.
    """

    index: int
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    label: str = ""


@dataclass(frozen=True)
class PointOutcome:
    """Optional rich return value of a task fn: payload + cycles simulated.

    Task functions that run the cycle-accurate simulator should return
    ``PointOutcome(value, cycles)`` (or any object exposing a ``cycles``
    attribute, e.g. :class:`~repro.network.simulator.SimulationResult`)
    so shard reports can account simulated cycles.  Plain return values
    are passed through with ``cycles=0``.
    """

    value: Any
    cycles: int = 0
    #: event-engine fallbacks behind this point (lane-sweep accounting:
    #: a point the batched engine could not take is re-run per-point on
    #: the event engine and flagged here so shard reports surface it)
    fallbacks: int = 0
    #: *why* the batched engine declined (``supports()`` reason strings,
    #: deduplicated upward into ``ShardReport``/``SweepReport`` and the
    #: service ``/v1/stats`` payload, so a silently-slow sweep is
    #: diagnosable instead of just countable)
    fallback_reasons: Tuple[str, ...] = ()
    #: how many sweep points this outcome covers — 1 for ordinary tasks,
    #: the lane count for a batched chunk.  Progress streams and
    #: checkpoint records carry it so per-point accounting survives
    #: chunk-granularity execution.
    points: int = 1


@dataclass(frozen=True)
class PointFailure:
    """An exception captured inside a worker while running one point.

    Failures are *collected*, not swallowed: after every shard finishes,
    :func:`run_sweep` raises a :class:`SweepError` naming each failed
    point with its worker-side traceback.  Capturing (rather than letting
    the exception kill ``pool.map``) guarantees one failing point cannot
    surface as a silently partial sweep and that the CLI exits non-zero
    with *every* failure reported, not just the first.
    """

    index: int
    label: str
    error: str
    traceback: str

    def format(self) -> str:
        label = f" ({self.label})" if self.label else ""
        return f"point {self.index}{label}: {self.error}"


class SweepError(RuntimeError):
    """One or more sweep points raised inside their worker shard."""

    def __init__(self, failures: Sequence[PointFailure]) -> None:
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} sweep point(s) failed:"]
        lines += [f"  {f.format()}" for f in self.failures]
        first_tb = next((f.traceback for f in self.failures if f.traceback), "")
        if first_tb:
            lines += ["", "first worker traceback:", first_tb]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class ShardReport:
    """Progress/timing of one worker shard.

    ``wall_time`` splits into ``setup_s`` — network construction and
    warm resets, harvested from :mod:`repro.network.warm` — and
    ``run_s``, everything else (dominated by the cycle loops).  The
    split is what makes the reset-reuse win visible per sweep: with the
    warm pool active, ``setup_s`` should be a small fraction of
    ``run_s`` after the shard's first point.
    """

    shard: int
    points: int
    wall_time: float
    cycles: int
    #: seconds spent building / resetting simulators inside this shard
    setup_s: float = 0.0
    #: seconds spent on everything else (cycle loops, reductions)
    run_s: float = 0.0
    #: attempts re-queued by the resilient runtime (crash/hang/exception)
    retries: int = 0
    #: watchdog expiries that killed and replaced this worker slot
    timeouts: int = 0
    #: points durably checkpointed to the run directory by this slot
    checkpointed: int = 0
    #: points this shard ran on the per-point event engine because the
    #: batched lane engine declined their configuration (see
    #: :func:`repro.network.batched.supports`)
    fallbacks: int = 0
    #: deduplicated ``supports()`` reason strings behind ``fallbacks``
    fallback_reasons: Tuple[str, ...] = ()

    def format(self) -> str:
        name = "resumed" if self.shard < 0 else f"shard {self.shard}"
        line = (
            f"{name}: {self.points} points, "
            f"{self.cycles:,} cycles, {self.wall_time:.2f}s "
            f"(setup {self.setup_s:.2f}s, run {self.run_s:.2f}s)"
        )
        extras = [
            f"{n} {what}"
            for n, what in (
                (self.retries, "retries"),
                (self.timeouts, "timeouts"),
                (self.checkpointed, "checkpointed"),
                (self.fallbacks, "event-engine fallbacks"),
            )
            if n
        ]
        if extras:
            line += f" [{', '.join(extras)}]"
        return line


@dataclass(frozen=True)
class SweepReport:
    """What ``run_sweep`` did: shard breakdown + overall wall time."""

    jobs: int
    points: int
    wall_time: float
    shards: tuple[ShardReport, ...]
    #: merged per-point observability data (``repro.observability``):
    #: ``{"metrics": ..., "traces": [(label, snap), ...], "profile": ...}``
    #: — ``None`` when no point was instrumented.  Metrics are merged in
    #: task-index order, so any ``--jobs`` value yields identical bytes.
    observability: Optional[dict] = None
    #: points spliced in from a checkpointed run directory (``--resume``)
    resumed: int = 0

    @property
    def cycles(self) -> int:
        """Total simulated cycles across all shards."""
        return sum(s.cycles for s in self.shards)

    @property
    def retries(self) -> int:
        """Attempts re-queued by the resilient runtime across all slots."""
        return sum(s.retries for s in self.shards)

    @property
    def timeouts(self) -> int:
        """Watchdog kills across all worker slots."""
        return sum(s.timeouts for s in self.shards)

    @property
    def checkpointed(self) -> int:
        """Points durably written to the run directory this run."""
        return sum(s.checkpointed for s in self.shards)

    @property
    def fallbacks(self) -> int:
        """Points re-run on the event engine by a lane sweep."""
        return sum(s.fallbacks for s in self.shards)

    @property
    def fallback_reasons(self) -> Tuple[str, ...]:
        """Deduplicated fallback reason strings across all shards."""
        seen: list[str] = []
        for s in self.shards:
            for r in s.fallback_reasons:
                if r not in seen:
                    seen.append(r)
        return tuple(seen)

    @property
    def worker_time(self) -> float:
        """Summed in-worker wall time (serial-equivalent work)."""
        return sum(s.wall_time for s in self.shards)

    @property
    def setup_time(self) -> float:
        """Summed network construction / warm-reset time across shards."""
        return sum(s.setup_s for s in self.shards)

    @property
    def run_time(self) -> float:
        """Summed non-setup worker time across shards."""
        return sum(s.run_s for s in self.shards)

    def format(self) -> str:
        head = (
            f"sweep: {self.points} points on {self.jobs} worker(s) "
            f"in {self.wall_time:.2f}s "
            f"(worker time {self.worker_time:.2f}s = "
            f"setup {self.setup_time:.2f}s + run {self.run_time:.2f}s, "
            f"{self.cycles:,} cycles simulated)"
        )
        notes = [
            f"{n} {what}"
            for n, what in (
                (self.resumed, "resumed from checkpoint"),
                (self.retries, "retries"),
                (self.timeouts, "timeouts"),
                (self.checkpointed, "checkpointed"),
                (self.fallbacks, "event-engine fallbacks"),
            )
            if n
        ]
        lines = [head + (f" [{', '.join(notes)}]" if notes else "")]
        reasons = self.fallback_reasons
        if reasons:
            lines.append(
                "  fallback reasons: " + "; ".join(reasons)
            )
        if self.jobs > 1:
            lines.extend("  " + s.format() for s in self.shards)
        return "\n".join(lines)


@dataclass(frozen=True)
class PartialSweepReport(SweepReport):
    """A sweep that finished *degraded*: some points failed or were skipped.

    Produced only by the resilient runtime
    (:mod:`repro.experiments.resilient`): completed points are intact (and
    checkpointed when a run directory is attached), ``failed`` lists the
    points whose retries were exhausted, and ``skipped`` the points never
    attempted because the sweep was interrupted.  Carried on
    :class:`PartialSweepError`; the CLI prints it and exits with code 3
    (partial success) rather than 1 (hard failure).
    """

    completed: Tuple[int, ...] = ()
    failed: Tuple[PointFailure, ...] = ()
    skipped: Tuple[int, ...] = ()

    def format(self) -> str:
        lines = [
            f"partial sweep: {len(self.completed)}/{self.points} points "
            f"completed, {len(self.failed)} failed, "
            f"{len(self.skipped)} skipped"
        ]
        lines += [f"  FAILED {f.format()}" for f in self.failed]
        if self.skipped:
            lines.append(
                "  skipped (interrupted before execution): "
                + ", ".join(map(str, self.skipped))
            )
        lines.append(super().format())
        return "\n".join(lines)


class PartialSweepError(SweepError):
    """The sweep completed degraded: retries exhausted on some points.

    Unlike a plain :class:`SweepError`, everything completable *was*
    completed (and checkpointed when durable): ``values`` holds the
    per-point results in task-index order with ``None`` holes at the
    failed/skipped indices, and ``report`` is the
    :class:`PartialSweepReport`.  ``python -m repro.experiments`` maps
    this to exit code 3 so callers can distinguish "usable partial
    result" from "nothing trustworthy".
    """

    def __init__(
        self, report: PartialSweepReport, values: "List[Any]"
    ) -> None:
        super().__init__(report.failed)
        self.report = report
        self.values = values


# ----------------------------------------------------------------------
# deterministic seeding
# ----------------------------------------------------------------------
def spawn_seeds(
    rng: np.random.SeedSequence | np.random.Generator | int | None,
    n: int,
) -> list[np.random.SeedSequence]:
    """``n`` independent child seeds, one per sweep point / MC trial.

    The children depend only on the root entropy and the spawn index —
    not on execution order — so seeding each point from its own child
    makes results independent of worker layout (the serial == parallel
    guarantee).  Accepts the same ``rng`` spellings the reliability
    modules already take: an int seed, ``None`` (fresh OS entropy), an
    existing :class:`~numpy.random.SeedSequence`, or a
    :class:`~numpy.random.Generator` (spawned via its bit generator's
    seed sequence).
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of seeds")
    if isinstance(rng, np.random.SeedSequence):
        return rng.spawn(n)
    if isinstance(rng, np.random.Generator):
        return rng.bit_generator.seed_seq.spawn(n)
    return np.random.SeedSequence(rng).spawn(n)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise the CLI's ``--jobs`` value to a worker count.

    ``None``/``1`` → serial, ``0`` → all cores, ``N`` → N workers.
    """
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _PackedTask:
    """A task pre-pickled in the parent, unpickled lazily in the worker.

    Shipping the task body as opaque bytes moves argument
    *deserialisation* inside the per-task exception guard: a task whose
    arguments fail to unpickle in the worker (a classic source of raw
    pool tracebacks that abort the whole sweep) is reported as a
    :class:`PointFailure` naming the offending task index, exactly like
    an exception raised by the task function itself.
    """

    index: int
    label: str
    payload: bytes


def _pack(task: SweepTask) -> "_PackedTask | SweepTask":
    """Pre-pickle for the parallel path; pass through if unpicklable.

    A task that cannot even be *pickled* here would also have killed
    ``pool.map``; passing it through lets the pool raise its usual
    (parent-side, immediate) error for truly unpicklable functions while
    worker-side unpickle failures stay contained per task.
    """
    try:
        return _PackedTask(task.index, task.label, pickle.dumps(task))
    except Exception:
        return task


def _execute(
    task: "SweepTask | _PackedTask",
) -> tuple[int, Any, int, int, Tuple[str, ...]]:
    """Run one task; returns (index, value, cycles, fallbacks, reasons).

    Exceptions — including unpickling a :class:`_PackedTask` payload —
    are captured as :class:`PointFailure` values so the rest of the
    shard still runs and the parent can report *all* failures.
    """
    try:
        if isinstance(task, _PackedTask):
            task = pickle.loads(task.payload)
        out = task.fn(*task.args, **task.kwargs)
    except Exception as exc:
        return (
            task.index,
            PointFailure(
                index=task.index,
                label=task.label,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
            ),
            0,
            0,
            (),
        )
    if isinstance(out, PointOutcome):
        return (
            task.index,
            out.value,
            int(out.cycles),
            int(out.fallbacks),
            tuple(out.fallback_reasons),
        )
    cycles = getattr(out, "cycles", 0)
    return (
        task.index, out, int(cycles) if isinstance(cycles, int) else 0, 0, ()
    )


def _run_shard(
    payload: "tuple[int, list[SweepTask | _PackedTask]]"
) -> tuple[list[tuple[int, Any, int, int, Tuple[str, ...]]], ShardReport]:
    """Worker entry point: run one shard's tasks serially, in order.

    The body outside :func:`_execute` (shard setup such as draining the
    warm-pool timer, plus report assembly) is guarded too: an exception
    there is attributed to the first task that had not completed, as a
    :class:`PointFailure`, instead of surfacing as a raw pool traceback
    that discards the whole sweep.
    """
    shard_id, tasks = payload
    rows: list[tuple[int, Any, int, int, Tuple[str, ...]]] = []
    t0 = time.perf_counter()
    try:
        warm.drain_setup_seconds()  # discard time accrued before this shard
        rows.extend(_execute(t) for t in tasks)
        setup = warm.drain_setup_seconds()
    except Exception as exc:
        offender = tasks[len(rows)] if len(rows) < len(tasks) else tasks[-1]
        rows.append(
            (
                offender.index,
                PointFailure(
                    index=offender.index,
                    label=offender.label,
                    error=f"shard setup failed: {type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                ),
                0,
                0,
                (),
            )
        )
        setup = 0.0
    wall = time.perf_counter() - t0
    reasons: list[str] = []
    for _, _, _, _, rs in rows:
        for r in rs:
            if r not in reasons:
                reasons.append(r)
    report = ShardReport(
        shard=shard_id,
        points=len(rows),
        wall_time=wall,
        cycles=sum(c for _, _, c, _, _ in rows),
        setup_s=setup,
        run_s=max(0.0, wall - setup),
        fallbacks=sum(f for _, _, _, f, _ in rows),
        fallback_reasons=tuple(reasons),
    )
    return rows, report


def _pool_context() -> mp.context.BaseContext:
    """Fork where the platform has it (cheap, no re-import); else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    tasks: Iterable[SweepTask] | Sequence[SweepTask],
    jobs: Optional[int] = None,
) -> tuple[list[Any], SweepReport]:
    """Execute all tasks; returns (values in task-index order, report).

    Serial (``jobs`` in {None, 1}) runs in-process; parallel shards the
    task list round-robin across a process pool.  Because every task is
    independent and self-seeded, both paths produce identical values.

    When a resilient runtime is active
    (:func:`repro.experiments.resilient.sweep_runtime`), execution is
    rerouted to the checkpointed/retrying executor — values are
    bit-identical; only the failure/durability semantics change.
    """
    tasks = list(tasks)
    indices = sorted(t.index for t in tasks)
    if indices != list(range(len(tasks))):
        raise ValueError("task indices must be exactly 0..len(tasks)-1")

    from . import resilient

    if resilient.active_runtime() is not None:
        return resilient.execute_sweep(tasks, jobs)

    n_jobs = min(resolve_jobs(jobs), len(tasks)) or 1

    t0 = time.perf_counter()
    if n_jobs <= 1:
        shard_outputs = [_run_shard((0, tasks))]
    else:
        # round-robin sharding interleaves long and short points (e.g.
        # low-load vs near-saturation simulations) across workers
        buckets: list[list[SweepTask | _PackedTask]] = [
            [] for _ in range(n_jobs)
        ]
        for i, task in enumerate(tasks):
            buckets[i % n_jobs].append(_pack(task))
        ctx = _pool_context()
        with ctx.Pool(processes=n_jobs) as pool:
            shard_outputs = pool.map(_run_shard, list(enumerate(buckets)))
    wall = time.perf_counter() - t0

    values: list[Any] = [None] * len(tasks)
    for rows, _ in shard_outputs:
        for index, value, _cycles, _fallbacks, _reasons in rows:
            values[index] = value

    failures = [v for v in values if isinstance(v, PointFailure)]
    if failures:
        raise SweepError(failures)

    # fold per-point observability snapshots in task-index order — the
    # order is independent of sharding, so `--jobs N` merges identically
    exports = [
        (tasks[i].label, getattr(v, "observability", None))
        for i, v in enumerate(values)
    ]
    report = SweepReport(
        jobs=n_jobs,
        points=len(tasks),
        wall_time=wall,
        shards=tuple(rep for _, rep in shard_outputs),
        observability=merge_exports(exports),
    )
    return values, report


def map_sweep(
    fn: Callable[..., Any],
    argtuples: Iterable[tuple],
    jobs: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> tuple[list[Any], SweepReport]:
    """Convenience wrapper: ``fn(*args)`` over a list of argument tuples."""
    argtuples = list(argtuples)
    labels = labels or [""] * len(argtuples)
    tasks = [
        SweepTask(index=i, fn=fn, args=tuple(args), label=label)
        for i, (args, label) in enumerate(zip(argtuples, labels))
    ]
    return run_sweep(tasks, jobs=jobs)


# ----------------------------------------------------------------------
# lane sweeps: batched-engine execution of structurally identical points
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LanePoint:
    """One simulation point declared *constructively* so it can batch.

    Where :class:`SweepTask` wraps an opaque callable, a ``LanePoint``
    names the ingredients — network/simulation configs, a picklable
    traffic factory, an optional fault-schedule factory, the router
    flavour and routing kind — which lets :func:`run_lane_sweep` group
    points sharing one *structural key* and step each group as lanes of
    a single :class:`repro.network.batched.BatchedLaneEngine` instead of
    one fabric per point.  Factories are called inside the worker (fresh
    RNG streams per attempt, so retries stay bit-identical) and must be
    module-level picklables, same as ``SweepTask.fn``.
    """

    config: NetworkConfig
    sim_config: SimulationConfig
    #: module-level callable returning the point's traffic source
    make_traffic: Callable[..., Any]
    traffic_args: tuple = ()
    #: module-level callable returning the point's fault schedule
    make_schedule: Optional[Callable[..., Any]] = None
    schedule_args: tuple = ()
    router_kind: str = "baseline"
    routing_kind: str = "xy"
    label: str = ""

    def structural_key(self) -> tuple:
        """Everything that must match for two points to share lanes."""
        return (
            self.config,
            self.sim_config,
            self.router_kind,
            self.routing_kind,
        )


def _resolve_factory(kind: str, config: NetworkConfig):
    """Router factory registry (kept as strings so LanePoints pickle)."""
    if kind == "baseline":
        from ..network.simulator import baseline_router_factory

        return baseline_router_factory(config)
    if kind == "protected":
        from ..core.protected_router import protected_router_factory

        return protected_router_factory(config)
    if kind == "roco":
        from ..comparison.roco_router import roco_router_factory

        return roco_router_factory(config)
    raise ValueError(f"unknown router_kind {kind!r}")


def _lane_event_point(
    point: LanePoint, fallback: bool = False, reason: str = ""
) -> PointOutcome:
    """Run one :class:`LanePoint` on the per-point event engine.

    Used both for ``engine="event"`` sweeps and as the per-point
    fallback when the batched engine declines a group's configuration;
    ``fallback=True`` marks the outcome and ``reason`` carries the
    ``supports()`` decline string so shard reports surface *why*.
    """
    schedule = (
        point.make_schedule(*point.schedule_args)
        if point.make_schedule is not None
        else None
    )
    sim = warm.acquire(
        point.config,
        point.sim_config,
        point.make_traffic(*point.traffic_args),
        router_factory=_resolve_factory(point.router_kind, point.config),
        fault_schedule=schedule,
        routing_kind=point.routing_kind,
        engine="event",
    )
    res = sim.run()
    return PointOutcome(
        res,
        cycles=res.cycles,
        fallbacks=int(fallback),
        fallback_reasons=(reason,) if fallback and reason else (),
    )


def _lane_batched_chunk(
    points: "tuple[LanePoint, ...]", width: Optional[int] = None
) -> PointOutcome:
    """Run a chunk of structurally identical points as batched lanes.

    ``width`` caps the concurrent lane slots: the first ``width`` points
    start immediately and the rest stream into slots freed by retiring
    lanes (lane refill), so arbitrarily long chunks run at a fixed array
    width without going sparse.
    """
    from ..network.batched import BatchedLaneEngine, LaneSpec

    first = points[0]
    lanes = [
        LaneSpec(
            p.make_traffic(*p.traffic_args),
            p.make_schedule(*p.schedule_args)
            if p.make_schedule is not None
            else None,
        )
        for p in points
    ]
    w = len(lanes) if width is None else max(1, min(width, len(lanes)))
    engine = BatchedLaneEngine(
        first.config,
        first.sim_config,
        lanes[:w],
        router_factory=_resolve_factory(first.router_kind, first.config),
        routing_kind=first.routing_kind,
        pending=lanes[w:],
    )
    results = engine.run()
    return PointOutcome(
        results,
        cycles=sum(r.cycles for r in results),
        points=len(results),
    )


def _chunk_evenly(indices: Sequence[int], n_chunks: int) -> list[list[int]]:
    """Split ``indices`` into ``n_chunks`` contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(indices)))
    base, extra = divmod(len(indices), n_chunks)
    chunks, pos = [], 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(list(indices[pos:pos + size]))
        pos += size
    return chunks


#: default cap on concurrent lane slots per batched chunk — the rest of
#: a chunk's points stream in through lane refill, so memory stays flat
#: no matter how many points a chunk carries
DEFAULT_LANE_WIDTH = 32

#: smallest structurally-identical group worth standing up the batched
#: engine for; singletons run faster on the plain event engine
_MIN_LANE_GROUP = 2


def run_lane_sweep(
    points: "Iterable[LanePoint] | Sequence[LanePoint]",
    jobs: Optional[int] = None,
    engine: str = "batched",
    lane_width: Optional[int] = None,
) -> tuple[list[Any], SweepReport]:
    """Execute lane points; returns (SimulationResults in order, report).

    With ``engine="batched"`` points are grouped by
    :meth:`LanePoint.structural_key`; each *supported* group (see
    :func:`repro.network.batched.supports`) is split into contiguous
    lane chunks — the chunk count is proportional to the group's
    estimated simulated cycles (warmup + measure + drain per point), so
    one long-horizon group splits finer instead of straggling a whole
    shard — and every chunk becomes one task stepping its lanes in a
    single :class:`BatchedLaneEngine` pass, at most ``lane_width``
    (default :data:`DEFAULT_LANE_WIDTH`) lanes wide with the remaining
    points streaming in through lane refill.  Process parallelism and
    lane batching compose.

    Groups the batched engine declines (adaptive routing, tracing
    enabled, oversized VC space, ...) — and groups too small to batch —
    fall back to one event-engine task per point, counted in
    ``ShardReport.fallbacks`` with the decline reason threaded into
    ``ShardReport.fallback_reasons``.  ``engine="event"`` runs every
    point per-fabric (no fallbacks recorded — nothing was declined).

    Execution funnels through :func:`run_sweep`, so a resilient runtime
    (checkpointing, retries, watchdog) applies at chunk granularity:
    resilient sweeps shard *groups of lanes*, exactly like the parallel
    path.  Results are bit-identical across engines, ``jobs`` and
    ``lane_width`` values — the batched engine is pinned lane-for-lane
    against the event engine by the golden differential tests.
    """
    points = list(points)
    if engine not in ("event", "batched"):
        raise ValueError(f"unknown engine {engine!r} (try 'event' or 'batched')")
    if not points:
        return [], SweepReport(jobs=0, points=0, wall_time=0.0, shards=())

    tasks: list[SweepTask] = []
    placements: list[tuple[bool, list[int]]] = []  # (is_chunk, indices)

    def _add(fn, args, label: str, is_chunk: bool, idxs: list[int]) -> None:
        tasks.append(
            SweepTask(index=len(tasks), fn=fn, args=args, label=label)
        )
        placements.append((is_chunk, idxs))

    if engine == "event":
        for i, p in enumerate(points):
            _add(
                _lane_event_point, (p,), p.label or f"lane {i}", False, [i]
            )
    else:
        from ..network.batched import supports as batched_supports

        n_jobs = resolve_jobs(jobs)
        width = (
            DEFAULT_LANE_WIDTH if lane_width is None else max(1, lane_width)
        )
        groups: dict[tuple, list[int]] = {}
        for i, p in enumerate(points):
            groups.setdefault(p.structural_key(), []).append(i)

        # triage: batchable groups vs per-point event fallbacks (with
        # the decline reason recorded for the report / service stats)
        batchable: list[tuple[list[int], LanePoint]] = []
        fallback: list[tuple[list[int], str]] = []
        for idxs in groups.values():
            rep = points[idxs[0]]
            # the representative's schedule factory may be None (e.g. a
            # fault-free reference point sharing the group): judge the
            # group by its most demanding schedule factory
            sched_factory = next(
                (
                    points[j].make_schedule
                    for j in idxs
                    if getattr(
                        points[j].make_schedule, "mutates_fabric", False
                    )
                ),
                rep.make_schedule,
            )
            reason = batched_supports(
                rep.config,
                _resolve_factory(rep.router_kind, rep.config),
                rep.routing_kind,
                schedule_factory=sched_factory,
            )
            if reason is None and len(idxs) < _MIN_LANE_GROUP:
                reason = (
                    f"group of {len(idxs)} structurally-identical point(s)"
                    " (below the lane batching threshold)"
                )
            if reason is None:
                batchable.append((idxs, rep))
            else:
                fallback.append((idxs, reason))

        # chunk counts balanced by estimated simulated cycles — the
        # horizon is uniform within a group because sim_config is part
        # of the structural key
        def _horizon(p: LanePoint) -> int:
            sc = p.sim_config
            return sc.warmup_cycles + sc.measure_cycles + sc.drain_cycles

        total_est = sum(_horizon(rep) * len(idxs) for idxs, rep in batchable)
        budget = (total_est / n_jobs) if total_est else 1.0
        for idxs, rep in batchable:
            est = _horizon(rep) * len(idxs)
            n_chunks = max(1, min(len(idxs), round(est / budget)))
            for chunk in _chunk_evenly(idxs, n_chunks):
                label = (
                    f"{rep.router_kind}/{rep.routing_kind} "
                    f"lanes {chunk[0]}-{chunk[-1]}"
                )
                _add(
                    _lane_batched_chunk,
                    (tuple(points[j] for j in chunk), width),
                    label,
                    True,
                    chunk,
                )
        for idxs, reason in fallback:
            for j in idxs:
                _add(
                    _lane_event_point,
                    (points[j], True, reason),
                    points[j].label or f"lane {j} (fallback: {reason})",
                    False,
                    [j],
                )

    values_raw, report = run_sweep(tasks, jobs=jobs)

    out: list[Any] = [None] * len(points)
    for value, (is_chunk, idxs) in zip(values_raw, placements):
        if is_chunk:
            for j, res in zip(idxs, value):
                out[j] = res
        else:
            out[idxs[0]] = value
    return out, replace(report, points=len(points))
