"""Experiment ``spf_sweep`` — Section VIII-E sensitivity: SPF vs VC count.

"This SPF value increases further beyond 11 if the number of VCs per
input is increased beyond 4.  If the number of VCs per input port is
decreased to 2, the SPF value is 7."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..reliability.spf import spf_vs_vc_count
from ..synthesis.area import area_overhead_vs_vcs
from .report import ExperimentResult, take_legacy

PAPER_SPF = {2: 7.0, 4: 11.4}


@dataclass(frozen=True)
class SPFSweepConfig:
    """Unified-API config of the SPF-vs-VC-count sweep."""

    vc_counts: tuple[int, ...] = (2, 3, 4, 6, 8)


def run(
    config: "SPFSweepConfig | Sequence[int] | None" = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is an :class:`SPFSweepConfig` (a bare VC-count sequence is
    accepted for compatibility); the old ``run(vc_counts=...)`` keyword
    still works but is deprecated.  The sweep is analytic, so
    ``jobs``/``seed``/``out_dir``/``resume`` are accepted for API
    uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # analytic: nothing to seed or shard
    if legacy:
        take_legacy("spf_sweep", legacy, {"vc_counts"})
        config = SPFSweepConfig(vc_counts=tuple(legacy["vc_counts"]))
    if config is None:
        config = SPFSweepConfig()
    elif not isinstance(config, SPFSweepConfig):
        config = SPFSweepConfig(vc_counts=tuple(config))
    return _run_experiment(config)


def _run_experiment(config: SPFSweepConfig) -> ExperimentResult:
    vc_counts = list(config.vc_counts)
    overheads = area_overhead_vs_vcs(vc_counts)
    sweep = spf_vs_vc_count(overheads)
    res = ExperimentResult(
        "spf_sweep", "SPF vs number of VCs per input port (Section VIII-E)"
    )
    for v, r in sweep.items():
        res.add(
            f"SPF @ {v} VCs (area ovh {overheads[v]:.0%})",
            round(r.spf, 2),
            PAPER_SPF.get(v),
        )
    spfs = [sweep[v].spf for v in sorted(sweep)]
    res.add(
        "SPF monotonically increases with VCs",
        all(a < b for a, b in zip(spfs, spfs[1:])),
        True,
    )
    if 4 in sweep:
        above = [v for v in sweep if v > 4]
        if above:
            res.add(
                "SPF beyond 4 VCs exceeds the 4-VC value",
                all(sweep[v].spf > sweep[4].spf for v in above),
                True,
            )
    res.extras["sweep"] = sweep
    res.extras["overheads"] = overheads
    return res
