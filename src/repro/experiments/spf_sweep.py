"""Experiment ``spf_sweep`` — Section VIII-E sensitivity: SPF vs VC count.

"This SPF value increases further beyond 11 if the number of VCs per
input is increased beyond 4.  If the number of VCs per input port is
decreased to 2, the SPF value is 7."
"""

from __future__ import annotations

from ..reliability.spf import spf_vs_vc_count
from ..synthesis.area import area_overhead_vs_vcs
from .report import ExperimentResult

PAPER_SPF = {2: 7.0, 4: 11.4}


def run(vc_counts: list[int] | None = None) -> ExperimentResult:
    vc_counts = vc_counts or [2, 3, 4, 6, 8]
    overheads = area_overhead_vs_vcs(vc_counts)
    sweep = spf_vs_vc_count(overheads)
    res = ExperimentResult(
        "spf_sweep", "SPF vs number of VCs per input port (Section VIII-E)"
    )
    for v, r in sweep.items():
        res.add(
            f"SPF @ {v} VCs (area ovh {overheads[v]:.0%})",
            round(r.spf, 2),
            PAPER_SPF.get(v),
        )
    spfs = [sweep[v].spf for v in sorted(sweep)]
    res.add(
        "SPF monotonically increases with VCs",
        all(a < b for a, b in zip(spfs, spfs[1:])),
        True,
    )
    if 4 in sweep:
        above = [v for v in sweep if v > 4]
        if above:
            res.add(
                "SPF beyond 4 VCs exceeds the 4-VC value",
                all(sweep[v].spf > sweep[4].spf for v in above),
                True,
            )
    res.extras["sweep"] = sweep
    res.extras["overheads"] = overheads
    return res
