"""Experiment ``mttf_sensitivity`` — MTTF vs operating point (extension).

The FORC/TDDB model (paper Eq. 2) makes voltage and temperature
first-class inputs; the paper evaluates only 1 V / 300 K.  This sweep
reports how the baseline and protected MTTFs degrade with hotter or
higher-voltage operation — the classic TDDB acceleration — and verifies
the paper's ~6x improvement ratio is *invariant* across operating
points, since both FIT totals scale by the same FORC factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..reliability.mttf import mttf_from_fit, mttf_two_component_paper
from ..reliability.stages import (
    RouterGeometry,
    baseline_stages,
    correction_stages,
    total_fit,
)
from .report import ExperimentResult, take_legacy


@dataclass(frozen=True)
class MTTFSensitivityConfig:
    """Unified-API config of the operating-point sensitivity sweep."""

    temps_k: tuple[float, ...] = (300.0, 330.0, 360.0)
    vdds: tuple[float, ...] = (0.9, 1.0, 1.1)
    geom: Optional[RouterGeometry] = None


def run(
    config: Optional[MTTFSensitivityConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is an :class:`MTTFSensitivityConfig`; the old
    ``run(temps_k=..., vdds=..., geom=...)`` keywords still work but are
    deprecated.  The sweep is closed-form, so ``jobs``/``seed``/
    ``out_dir``/``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    if legacy:
        take_legacy("mttf_sensitivity", legacy, {"temps_k", "vdds", "geom"})
        for key in ("temps_k", "vdds"):
            if legacy.get(key) is not None:
                legacy[key] = tuple(legacy[key])
        config = replace(config or MTTFSensitivityConfig(), **legacy)
    config = config or MTTFSensitivityConfig()
    return _run_experiment(config)


def _run_experiment(config: MTTFSensitivityConfig) -> ExperimentResult:
    temps_k: Sequence[float] = list(config.temps_k)
    vdds: Sequence[float] = list(config.vdds)
    geom = config.geom or RouterGeometry()
    base = baseline_stages(geom)
    corr = correction_stages(geom)

    res = ExperimentResult(
        "mttf_sensitivity",
        "MTTF vs temperature and voltage (TDDB acceleration, extension)",
    )
    ratios = []
    for t in temps_k:
        l1 = total_fit(base, temp_k=t)
        l2 = total_fit(corr, temp_k=t)
        mb = mttf_from_fit(l1)
        mp = mttf_two_component_paper(l1, l2)
        ratios.append(mp / mb)
        res.add(f"MTTF baseline @ {t:.0f} K", round(mb), None, unit="h")
        res.add(f"MTTF protected @ {t:.0f} K", round(mp), None, unit="h")
    for v in vdds:
        l1 = total_fit(base, vdd=v)
        l2 = total_fit(corr, vdd=v)
        mp = mttf_two_component_paper(l1, l2)
        ratios.append(mp / mttf_from_fit(l1))
        res.add(f"MTTF protected @ {v:.1f} V", round(mp), None, unit="h")

    mttfs_t = [
        mttf_from_fit(total_fit(base, temp_k=t)) for t in sorted(temps_k)
    ]
    res.add(
        "hotter silicon fails sooner",
        all(a > b for a, b in zip(mttfs_t, mttfs_t[1:])),
        True,
    )
    mttfs_v = [mttf_from_fit(total_fit(base, vdd=v)) for v in sorted(vdds)]
    res.add(
        "higher voltage fails sooner",
        all(a > b for a, b in zip(mttfs_v, mttfs_v[1:])),
        True,
    )
    res.add(
        "improvement ratio invariant across operating points",
        max(ratios) - min(ratios) < 1e-6,
        True,
        note="both FIT totals scale by the same FORC factor, so the "
        "paper's ~6x holds at every corner",
    )
    res.add("improvement ratio", round(ratios[0], 2), 6.0)
    res.extras["ratios"] = ratios
    return res
