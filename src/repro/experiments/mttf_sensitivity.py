"""Experiment ``mttf_sensitivity`` — MTTF vs operating point (extension).

The FORC/TDDB model (paper Eq. 2) makes voltage and temperature
first-class inputs; the paper evaluates only 1 V / 300 K.  This sweep
reports how the baseline and protected MTTFs degrade with hotter or
higher-voltage operation — the classic TDDB acceleration — and verifies
the paper's ~6x improvement ratio is *invariant* across operating
points, since both FIT totals scale by the same FORC factor.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..reliability.mttf import mttf_from_fit, mttf_two_component_paper
from ..reliability.stages import (
    RouterGeometry,
    baseline_stages,
    correction_stages,
    total_fit,
)
from .report import ExperimentResult


def run(
    temps_k: Optional[Sequence[float]] = None,
    vdds: Optional[Sequence[float]] = None,
    geom: RouterGeometry | None = None,
) -> ExperimentResult:
    temps_k = list(temps_k or (300.0, 330.0, 360.0))
    vdds = list(vdds or (0.9, 1.0, 1.1))
    geom = geom or RouterGeometry()
    base = baseline_stages(geom)
    corr = correction_stages(geom)

    res = ExperimentResult(
        "mttf_sensitivity",
        "MTTF vs temperature and voltage (TDDB acceleration, extension)",
    )
    ratios = []
    for t in temps_k:
        l1 = total_fit(base, temp_k=t)
        l2 = total_fit(corr, temp_k=t)
        mb = mttf_from_fit(l1)
        mp = mttf_two_component_paper(l1, l2)
        ratios.append(mp / mb)
        res.add(f"MTTF baseline @ {t:.0f} K", round(mb), None, unit="h")
        res.add(f"MTTF protected @ {t:.0f} K", round(mp), None, unit="h")
    for v in vdds:
        l1 = total_fit(base, vdd=v)
        l2 = total_fit(corr, vdd=v)
        mp = mttf_two_component_paper(l1, l2)
        ratios.append(mp / mttf_from_fit(l1))
        res.add(f"MTTF protected @ {v:.1f} V", round(mp), None, unit="h")

    mttfs_t = [
        mttf_from_fit(total_fit(base, temp_k=t)) for t in sorted(temps_k)
    ]
    res.add(
        "hotter silicon fails sooner",
        all(a > b for a, b in zip(mttfs_t, mttfs_t[1:])),
        True,
    )
    mttfs_v = [mttf_from_fit(total_fit(base, vdd=v)) for v in sorted(vdds)]
    res.add(
        "higher voltage fails sooner",
        all(a > b for a, b in zip(mttfs_v, mttfs_v[1:])),
        True,
    )
    res.add(
        "improvement ratio invariant across operating points",
        max(ratios) - min(ratios) < 1e-6,
        True,
        note="both FIT totals scale by the same FORC factor, so the "
        "paper's ~6x holds at every corner",
    )
    res.add("improvement ratio", round(ratios[0], 2), 6.0)
    res.extras["ratios"] = ratios
    return res
