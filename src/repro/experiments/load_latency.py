"""Experiment ``load_latency`` — load–latency curves, fault-free vs faulty.

Extension beyond the paper's Figures 7/8: the classic NoC evaluation
curve.  Sweeping offered load shows *where* the tolerated-fault overhead
comes from — at low load the protected router absorbs faults almost for
free (the +1-cycle penalties are rare and uncontended); approaching
saturation, bypass serialisation and secondary-path mux sharing cost
real bandwidth, so the faulty curve saturates earlier.  The crossover
structure ("faults shift the saturation knee left") is the shape this
experiment pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from ..config import NetworkConfig, RouterConfig, SimulationConfig
from ..faults.injector import RandomFaultSchedule
from ..traffic.generator import SyntheticTraffic
from .report import ExperimentResult, override_seed, take_legacy
from .resilient import sweep_runtime


@dataclass(frozen=True)
class LoadLatencyConfig:
    """Unified-API config of the load-latency sweep."""

    rates: tuple[float, ...] = (0.05, 0.10, 0.15, 0.20, 0.25)
    width: int = 4
    height: int = 4
    num_faults: int = 48
    seed: int = 1
    measure: int = 3000
    #: sweep execution engine: ``"batched"`` steps all points sharing the
    #: structural key as lanes of one NumPy engine (bit-identical to
    #: ``"event"``, which runs one fabric per point)
    engine: str = "batched"


@dataclass(frozen=True)
class LoadPoint:
    """One sweep point: offered load and the two measured latencies."""

    injection_rate: float
    fault_free_latency: float
    faulty_latency: float

    @property
    def overhead(self) -> float:
        return self.faulty_latency / self.fault_free_latency - 1.0


def _make_traffic(net: NetworkConfig, rate: float, seed: int) -> SyntheticTraffic:
    from ..traffic.generator import COHERENCE_MIX

    return SyntheticTraffic(net, injection_rate=rate, mix=COHERENCE_MIX, rng=seed)


def _make_schedule(net: NetworkConfig, faults: int, seed: int) -> RandomFaultSchedule:
    return RandomFaultSchedule(
        net.router, net.num_nodes, mean_interval=5.0, num_faults=faults,
        rng=seed + 101, first_fault_at=0, avoid_failure=True,
    )


def sweep(
    rates: Sequence[float],
    width: int = 4,
    height: int = 4,
    num_faults: int = 48,
    seed: int = 1,
    measure: int = 3000,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> list[LoadPoint]:
    """Measure the fault-free and faulty curves over ``rates``.

    Traffic is the coherence mix (1-flit control + 5-flit data on two
    virtual networks) — multi-flit packets are what make secondary-path
    mux sharing and bypass serialisation visible.
    """
    points, _ = sweep_sharded(
        rates, width=width, height=height, num_faults=num_faults,
        seed=seed, measure=measure, jobs=jobs, engine=engine,
    )
    return points


def sweep_sharded(
    rates: Sequence[float],
    width: int = 4,
    height: int = 4,
    num_faults: int = 48,
    seed: int = 1,
    measure: int = 3000,
    jobs: Optional[int] = None,
    engine: str = "batched",
) -> tuple[list[LoadPoint], "SweepReport"]:
    """The sweep through the lane engine: 2 points per rate (fault-free,
    faulty), each an independent seeded simulation.

    All points share one structural key (same mesh, protected router,
    XY routing), so with ``engine="batched"`` the whole sweep steps as
    lanes of a single :class:`repro.network.batched.BatchedLaneEngine`
    per worker — bit-identical to ``engine="event"`` (one warm-pooled
    fabric per point), which remains available for configurations the
    batched path declines and for A/B timing.
    """
    from .parallel import LanePoint, run_lane_sweep

    if not rates:
        raise ValueError("need at least one rate")
    net = NetworkConfig(
        width=width, height=height,
        router=RouterConfig(num_vcs=4, num_vnets=2),
    )
    sim_config = SimulationConfig(
        warmup_cycles=500,
        measure_cycles=measure,
        drain_cycles=max(4000, measure),
        seed=seed,
        watchdog_cycles=20_000,
    )
    points = []
    for rate in rates:
        for faults in (0, num_faults):
            points.append(
                LanePoint(
                    config=net,
                    sim_config=sim_config,
                    make_traffic=_make_traffic,
                    traffic_args=(net, rate, seed),
                    make_schedule=_make_schedule if faults else None,
                    schedule_args=(net, faults, seed) if faults else (),
                    router_kind="protected",
                    label=f"rate={rate:.2f}:{'faulty' if faults else 'ff'}",
                )
            )
    values, report = run_lane_sweep(points, jobs=jobs, engine=engine)
    curve_points = [
        LoadPoint(
            rate,
            values[2 * i].avg_network_latency,
            values[2 * i + 1].avg_network_latency,
        )
        for i, rate in enumerate(rates)
    ]
    return curve_points, report


def run(
    config: Optional[LoadLatencyConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`LoadLatencyConfig`; the old ``run(rates=...,
    width=..., ...)`` keywords still work but are deprecated.
    ``out_dir``/``resume`` attach the resilient sweep runtime.
    """
    if legacy:
        take_legacy(
            "load_latency", legacy,
            {"rates", "width", "height", "num_faults", "measure"},
        )
        if "rates" in legacy:
            legacy["rates"] = tuple(legacy["rates"])
        config = replace(config or LoadLatencyConfig(), **legacy)
    config = override_seed(config or LoadLatencyConfig(), seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return _run_experiment(config, jobs)


def _run_experiment(
    config: LoadLatencyConfig, jobs: Optional[int]
) -> ExperimentResult:
    rates = list(config.rates)
    points, sweep_report = sweep_sharded(
        rates,
        width=config.width,
        height=config.height,
        num_faults=config.num_faults,
        seed=config.seed,
        measure=config.measure,
        jobs=jobs,
        engine=config.engine,
    )
    res = ExperimentResult(
        "load_latency",
        "load-latency curves, fault-free vs faulty (extension)",
    )
    for p in points:
        res.add(
            f"latency @ {p.injection_rate:.2f} flits/node/cycle (fault-free)",
            round(p.fault_free_latency, 2),
            None,
            unit="cycles",
        )
        res.add(
            f"latency @ {p.injection_rate:.2f} flits/node/cycle (faulty)",
            round(p.faulty_latency, 2),
            None,
            unit="cycles",
        )
    overheads = [p.overhead for p in points]
    res.add("overhead at lowest load", round(overheads[0], 3), None)
    res.add("overhead at highest load", round(overheads[-1], 3), None)
    res.add(
        "fault overhead grows with load",
        overheads[-1] > overheads[0],
        True,
        note="the contention-driven mechanism behind Figures 7/8",
    )
    res.extras["points"] = points
    res.extras["sweep"] = sweep_report
    from .charts import curve

    res.extras["chart"] = (
        "fault-free:\n"
        + curve(rates, [p.fault_free_latency for p in points])
        + "\nfaulty:\n"
        + curve(rates, [p.faulty_latency for p in points])
    )
    return res
