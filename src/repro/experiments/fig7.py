"""Experiment ``fig7`` — paper Figure 7: SPLASH-2 latency under faults.

"Overall NoC latency has increased by 10 % ... for SPLASH-2 benchmark
applications ... in the presence of multiple faults."
"""

from __future__ import annotations

from typing import Optional, Sequence

from .latency import LatencyConfig, suite_experiment
from .report import ExperimentResult

PAPER_OVERALL_OVERHEAD = 0.10


def run(
    cfg: LatencyConfig | None = None,
    apps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    return suite_experiment(
        "fig7",
        "SPLASH-2 latency, fault-free vs faulty (Figure 7)",
        "splash2",
        PAPER_OVERALL_OVERHEAD,
        cfg=cfg,
        apps=apps,
        jobs=jobs,
    )
