"""Experiment ``fig7`` — paper Figure 7: SPLASH-2 latency under faults.

"Overall NoC latency has increased by 10 % ... for SPLASH-2 benchmark
applications ... in the presence of multiple faults."
"""

from __future__ import annotations

from typing import Optional

from .latency import LatencyConfig, SuiteRunConfig, coerce_suite_config, suite_experiment
from .report import ExperimentResult
from .resilient import sweep_runtime

PAPER_OVERALL_OVERHEAD = 0.10


def run(
    config: "LatencyConfig | SuiteRunConfig | None" = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`~repro.experiments.latency.LatencyConfig` or
    :class:`~repro.experiments.latency.SuiteRunConfig`.  The old
    ``run(cfg=..., apps=..., jobs=...)`` keywords still work but are
    deprecated.  ``out_dir``/``resume`` attach the resilient sweep
    runtime (checkpointed, resumable — see ``docs/resilience.md``).
    """
    cfg = coerce_suite_config("fig7", config, legacy, seed)
    with sweep_runtime(out_dir=out_dir, resume=resume):
        return suite_experiment(
            "fig7",
            "SPLASH-2 latency, fault-free vs faulty (Figure 7)",
            "splash2",
            PAPER_OVERALL_OVERHEAD,
            cfg=cfg.latency,
            apps=cfg.apps,
            jobs=jobs,
            engine=cfg.engine,
        )
