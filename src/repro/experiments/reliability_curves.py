"""Experiment ``reliability_curves`` — R(t) of baseline vs protected.

Extension: the paper reports only the MTTF point estimates; the same
model yields the full survival curves R(t) (exponential for the SOFR
baseline, the two-component parallel form for the protected router).
The interesting engineering quantity is the *mission-time multiplier*:
for a target survival probability (say 95 %), how much longer can the
protected router stay in service?
"""

from __future__ import annotations

import numpy as np

from ..reliability.mttf import (
    protected_reliability_curve,
    reliability_curve,
)
from ..reliability.stages import (
    RouterGeometry,
    baseline_stages,
    correction_stages,
    total_fit,
)
from .report import ExperimentResult


def mission_time(fit_curve, horizon: np.ndarray, target: float) -> float:
    """Largest time with survival probability >= target (interpolated)."""
    if not 0 < target < 1:
        raise ValueError("target probability must be in (0, 1)")
    r = fit_curve
    idx = np.searchsorted(-r, -target)  # r is decreasing
    if idx == 0:
        return 0.0
    if idx >= len(horizon):
        return float(horizon[-1])
    # linear interpolation between the bracketing samples
    t0, t1 = horizon[idx - 1], horizon[idx]
    r0, r1 = r[idx - 1], r[idx]
    if r0 == r1:
        return float(t0)
    return float(t0 + (r0 - target) * (t1 - t0) / (r0 - r1))


def run(
    geom: RouterGeometry | None = None,
    horizon_hours: float = 2e6,
    points: int = 4000,
    targets: tuple[float, ...] = (0.99, 0.95, 0.90),
) -> ExperimentResult:
    geom = geom or RouterGeometry()
    l1 = total_fit(baseline_stages(geom))
    l2 = total_fit(correction_stages(geom))
    hours = np.linspace(0.0, horizon_hours, points)
    r_base = reliability_curve(l1, hours)
    r_prot = protected_reliability_curve(l1, l2, hours)

    res = ExperimentResult(
        "reliability_curves",
        "survival curves R(t), baseline vs protected (extension)",
    )
    for t_year in (1, 5, 10):
        t = t_year * 8760.0
        i = int(np.searchsorted(hours, t))
        i = min(i, points - 1)
        res.add(
            f"R(baseline) after {t_year}y", round(float(r_base[i]), 4), None
        )
        res.add(
            f"R(protected) after {t_year}y", round(float(r_prot[i]), 4), None
        )
    for target in targets:
        mb = mission_time(r_base, hours, target)
        mp = mission_time(r_prot, hours, target)
        res.add(f"mission time @ R>={target} (baseline)", round(mb), None, unit="h")
        res.add(f"mission time @ R>={target} (protected)", round(mp), None, unit="h")
        res.add(
            f"mission-time multiplier @ R>={target}",
            round(mp / mb, 1) if mb > 0 else float("inf"),
            None,
            note="redundancy helps most at high survival targets",
        )
    res.extras["hours"] = hours
    res.extras["baseline"] = r_base
    res.extras["protected"] = r_prot
    return res
