"""Experiment ``reliability_curves`` — R(t) of baseline vs protected.

Extension: the paper reports only the MTTF point estimates; the same
model yields the full survival curves R(t) (exponential for the SOFR
baseline, the two-component parallel form for the protected router).
The interesting engineering quantity is the *mission-time multiplier*:
for a target survival probability (say 95 %), how much longer can the
protected router stay in service?
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..reliability.mttf import (
    protected_reliability_curve,
    reliability_curve,
)
from ..reliability.stages import (
    RouterGeometry,
    baseline_stages,
    correction_stages,
    total_fit,
)
from .report import ExperimentResult, take_legacy


@dataclass(frozen=True)
class ReliabilityCurvesConfig:
    """Unified-API config of the survival-curve analysis."""

    geom: Optional[RouterGeometry] = None
    horizon_hours: float = 2e6
    points: int = 4000
    targets: tuple[float, ...] = (0.99, 0.95, 0.90)


def mission_time(fit_curve, horizon: np.ndarray, target: float) -> float:
    """Largest time with survival probability >= target (interpolated)."""
    if not 0 < target < 1:
        raise ValueError("target probability must be in (0, 1)")
    r = fit_curve
    idx = np.searchsorted(-r, -target)  # r is decreasing
    if idx == 0:
        return 0.0
    if idx >= len(horizon):
        return float(horizon[-1])
    # linear interpolation between the bracketing samples
    t0, t1 = horizon[idx - 1], horizon[idx]
    r0, r1 = r[idx - 1], r[idx]
    if r0 == r1:
        return float(t0)
    return float(t0 + (r0 - target) * (t1 - t0) / (r0 - r1))


def run(
    config: Optional[ReliabilityCurvesConfig] = None,
    *,
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    out_dir=None,
    resume=None,
    **legacy,
) -> ExperimentResult:
    """Unified entry point (``run(config, *, jobs, seed, out_dir, resume)``).

    ``config`` is a :class:`ReliabilityCurvesConfig`; the old
    ``run(geom=..., horizon_hours=..., ...)`` keywords still work but
    are deprecated.  The curves are closed-form, so ``jobs``/``seed``/
    ``out_dir``/``resume`` are accepted for API uniformity and ignored.
    """
    del jobs, seed, out_dir, resume  # closed-form: nothing to seed or shard
    if legacy:
        take_legacy(
            "reliability_curves", legacy,
            {"geom", "horizon_hours", "points", "targets"},
        )
        if legacy.get("targets") is not None:
            legacy["targets"] = tuple(legacy["targets"])
        config = replace(config or ReliabilityCurvesConfig(), **legacy)
    config = config or ReliabilityCurvesConfig()
    return _run_experiment(config)


def _run_experiment(config: ReliabilityCurvesConfig) -> ExperimentResult:
    geom = config.geom or RouterGeometry()
    horizon_hours, points = config.horizon_hours, config.points
    targets = config.targets
    l1 = total_fit(baseline_stages(geom))
    l2 = total_fit(correction_stages(geom))
    hours = np.linspace(0.0, horizon_hours, points)
    r_base = reliability_curve(l1, hours)
    r_prot = protected_reliability_curve(l1, l2, hours)

    res = ExperimentResult(
        "reliability_curves",
        "survival curves R(t), baseline vs protected (extension)",
    )
    for t_year in (1, 5, 10):
        t = t_year * 8760.0
        i = int(np.searchsorted(hours, t))
        i = min(i, points - 1)
        res.add(
            f"R(baseline) after {t_year}y", round(float(r_base[i]), 4), None
        )
        res.add(
            f"R(protected) after {t_year}y", round(float(r_prot[i]), 4), None
        )
    for target in targets:
        mb = mission_time(r_base, hours, target)
        mp = mission_time(r_prot, hours, target)
        res.add(f"mission time @ R>={target} (baseline)", round(mb), None, unit="h")
        res.add(f"mission time @ R>={target} (protected)", round(mp), None, unit="h")
        res.add(
            f"mission-time multiplier @ R>={target}",
            round(mp / mb, 1) if mb > 0 else float("inf"),
            None,
            note="redundancy helps most at high survival targets",
        )
    res.extras["hours"] = hours
    res.extras["baseline"] = r_base
    res.extras["protected"] = r_prot
    return res
