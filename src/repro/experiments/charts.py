"""Terminal bar charts for the figure reproductions.

The paper's Figures 7 and 8 are grouped bar charts (fault-free vs faulty
latency per application).  This module renders the same series as
Unicode text so `python -m repro.experiments fig7` shows the figure, not
just the rows — no plotting dependency required.
"""

from __future__ import annotations

from typing import Sequence


FULL = "█"
HALF = "▌"


def hbar(value: float, vmax: float, width: int = 40) -> str:
    """A horizontal bar scaled so ``vmax`` fills ``width`` characters."""
    if vmax <= 0:
        raise ValueError("vmax must be positive")
    if value < 0:
        raise ValueError("value must be >= 0")
    cells = value / vmax * width
    full = int(cells)
    frac = cells - full
    bar = FULL * min(full, width)
    if full < width and frac >= 0.5:
        bar += HALF
    return bar


def grouped_bars(
    labels: Sequence[str],
    series_a: Sequence[float],
    series_b: Sequence[float],
    name_a: str = "fault-free",
    name_b: str = "faulty",
    width: int = 40,
    unit: str = "cycles",
) -> str:
    """Render two series per label as paired horizontal bars."""
    if not (len(labels) == len(series_a) == len(series_b)):
        raise ValueError("labels and series must have equal length")
    if not labels:
        raise ValueError("nothing to plot")
    vmax = max(max(series_a), max(series_b))
    label_w = max(len(l) for l in labels)
    lines = [f"{'':<{label_w}}   {name_a} vs {name_b} ({unit})"]
    for label, a, b in zip(labels, series_a, series_b):
        lines.append(f"{label:<{label_w}}  |{hbar(a, vmax, width)} {a:.1f}")
        lines.append(f"{'':<{label_w}}  |{hbar(b, vmax, width)} {b:.1f}")
    return "\n".join(lines)


def latency_figure(results, title: str) -> str:
    """Figure 7/8-style chart from a list of AppLatency results."""
    labels = [r.app for r in results]
    ff = [r.fault_free for r in results]
    fy = [r.faulty for r in results]
    chart = grouped_bars(labels, ff, fy)
    overall = sum(r.overhead for r in results) / len(results)
    return f"{title}\n{chart}\noverall latency increase: {overall:+.1%}"


def curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 40,
    x_label: str = "load",
    y_label: str = "latency",
) -> str:
    """A one-series horizontal-bar 'curve' (monotone x expected)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    vmax = max(ys)
    lines = [f"{x_label:>8}  {y_label}"]
    for x, y in zip(xs, ys):
        lines.append(f"{x:>8.3f}  |{hbar(y, vmax, width)} {y:.1f}")
    return "\n".join(lines)
