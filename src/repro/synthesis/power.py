"""Power analysis (paper Section VI-A).

"...increases the ... average power (dynamic+static) consumption of the
protected router by 29 % with respect to that of the baseline router.
Incorporating fault detection mechanism, the resulting ... power overhead
is 30 %."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.stages import RouterGeometry
from .netlists import baseline_netlist, correction_netlist, detection_netlist


@dataclass(frozen=True)
class PowerReport:
    """Average power (nW) and overhead fractions for one geometry."""

    baseline_static_nw: float
    baseline_dynamic_nw: float
    correction_static_nw: float
    correction_dynamic_nw: float
    detection_nw: float

    @property
    def baseline_nw(self) -> float:
        return self.baseline_static_nw + self.baseline_dynamic_nw

    @property
    def correction_nw(self) -> float:
        return self.correction_static_nw + self.correction_dynamic_nw

    @property
    def protected_nw(self) -> float:
        return self.baseline_nw + self.correction_nw

    @property
    def correction_overhead(self) -> float:
        """Correction circuitry only (paper: ~29 %)."""
        return self.correction_nw / self.baseline_nw

    @property
    def total_overhead(self) -> float:
        """Correction + detection (paper: ~30 %)."""
        return (self.correction_nw + self.detection_nw) / self.baseline_nw


def analyze_power(geom: RouterGeometry | None = None) -> PowerReport:
    """Proxy-synthesise the netlists and report power overheads."""
    geom = geom or RouterGeometry()
    base = baseline_netlist(geom)
    corr = correction_netlist(geom)
    det = detection_netlist(geom)
    return PowerReport(
        baseline_static_nw=base.static_power_nw,
        baseline_dynamic_nw=base.dynamic_power_nw,
        correction_static_nw=corr.static_power_nw,
        correction_dynamic_nw=corr.dynamic_power_nw,
        detection_nw=det.total_power_nw,
    )


def power_overhead(
    geom: RouterGeometry | None = None, with_detection: bool = True
) -> float:
    rep = analyze_power(geom)
    return rep.total_overhead if with_detection else rep.correction_overhead
