"""Critical-path analysis (paper Section VI-B).

"...we synthesized individual pipeline stages of both the baseline and
protected router at varying clock periods.  The critical path of an
individual stage is calculated by finding out the specific clock period
that results in zero slack time.  Since RC stage employs spatial
redundancy, there is negligible impact on the critical path of this
stage.  However, due to the correction circuitry, critical paths of VA,
SA and XB stages have increased by 20 %, 10 % and 25 % with respect to
the baseline stages."

The proxy models each stage's longest register-to-register path as a
chain of cells from the :mod:`repro.synthesis.gates` delay table, for the
baseline stage and with the correction circuitry inserted:

* **RC** — comparator tree; the duplicate unit computes in parallel and
  only a (pre-set, fault-latched) selection mux is added, off the data
  critical path except for its own propagation.
* **VA** — stage-1 v:1 arbiter + stage-2 pi*v:1 arbiter; the FT version
  inserts the borrow mux and the G-field priority scan in front of
  stage 1.
* **SA** — stage-1 v:1 arbiter + stage-2 pi:1 arbiter; the FT version
  adds the 2:1 bypass mux after stage 1.
* **XB** — the pi:1 data mux; the FT version adds the demux and the 2:1
  output mux (P1..P5) in series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..reliability.stages import RouterGeometry
from .gates import gate_delay


def _arbiter_levels(requests: int) -> int:
    """Logic levels of a round-robin arbiter ~ log2(requests) + priority."""
    return max(1, math.ceil(math.log2(max(2, requests)))) + 1


@dataclass(frozen=True)
class StagePath:
    """One stage's critical path: named cells and their summed delay."""

    stage: str
    cells: tuple[tuple[str, float], ...]

    @property
    def delay_ps(self) -> float:
        return sum(d for _, d in self.cells)


def _path(stage: str, cells: list[tuple[str, float]]) -> StagePath:
    return StagePath(stage, tuple(cells))


def baseline_paths(geom: RouterGeometry | None = None) -> dict[str, StagePath]:
    """Longest paths of the four baseline stages."""
    geom = geom or RouterGeometry()
    P, V = geom.num_ports, geom.num_vcs
    cq, setup = gate_delay("dff_cq"), gate_delay("dff_setup")
    arb = gate_delay("arbiter_per_level")

    rc = _path("RC", [
        ("dff C-to-Q", cq),
        ("X comparator", geom.dest_bits * gate_delay("comparator_bit") / 2),
        ("Y comparator", geom.dest_bits * gate_delay("comparator_bit") / 2),
        ("direction select", gate_delay("mux4")),
        ("dff setup", setup),
    ])
    va = _path("VA", [
        ("dff C-to-Q", cq),
        ("stage-1 v:1 arbiter", _arbiter_levels(V) * arb),
        ("stage-2 pi*v:1 arbiter", _arbiter_levels(P * V) * arb),
        ("grant encode", gate_delay("mux4")),
        ("dff setup", setup),
    ])
    sa = _path("SA", [
        ("dff C-to-Q", cq),
        ("stage-1 v:1 arbiter", _arbiter_levels(V) * arb),
        ("stage-2 pi:1 arbiter", _arbiter_levels(P) * arb),
        ("xbar select encode", gate_delay("mux4")),
        ("dff setup", setup),
    ])
    xb = _path("XB", [
        ("dff C-to-Q", cq),
        ("pi:1 data mux", gate_delay("mux5")),
        ("crossbar wire RC", 20.0),
        ("output drive", gate_delay("inv") * 2),
        ("dff setup", setup),
    ])
    return {"RC": rc, "VA": va, "SA": sa, "XB": xb}


def protected_paths(geom: RouterGeometry | None = None) -> dict[str, StagePath]:
    """Longest paths with the correction circuitry inserted."""
    geom = geom or RouterGeometry()
    base = baseline_paths(geom)

    def extended(stage: str, extra: list[tuple[str, float]]) -> StagePath:
        b = base[stage]
        # insert extras before the final setup element
        cells = list(b.cells[:-1]) + extra + [b.cells[-1]]
        return StagePath(stage, tuple(cells))

    rc = extended("RC", [
        ("unit-select mux (fault latch preset)", gate_delay("inv")),
    ])
    va = extended("VA", [
        ("G-field priority scan (lender pick)", gate_delay("priority_scan")),
        ("borrow mux (R2/own RC result)", gate_delay("mux2")),
        ("VF gating", gate_delay("nand2")),
    ])
    sa = extended("SA", [
        ("bypass 2:1 mux", gate_delay("mux2")),
        ("default-winner register gate", gate_delay("inv")),
    ])
    xb = extended("XB", [
        ("secondary demux", gate_delay("demux2")),
        ("P output 2:1 mux", gate_delay("mux2")),
    ])
    return {"RC": rc, "VA": va, "SA": sa, "XB": xb}


@dataclass(frozen=True)
class CriticalPathReport:
    """Per-stage baseline/protected delays and the overhead fractions."""

    baseline_ps: dict[str, float]
    protected_ps: dict[str, float]

    def overhead(self, stage: str) -> float:
        return self.protected_ps[stage] / self.baseline_ps[stage] - 1.0

    @property
    def overheads(self) -> dict[str, float]:
        return {s: self.overhead(s) for s in self.baseline_ps}

    @property
    def min_clock_period_baseline_ps(self) -> float:
        """Zero-slack clock period of the baseline router (slowest stage)."""
        return max(self.baseline_ps.values())

    @property
    def min_clock_period_protected_ps(self) -> float:
        return max(self.protected_ps.values())


def analyze_critical_path(
    geom: RouterGeometry | None = None,
) -> CriticalPathReport:
    geom = geom or RouterGeometry()
    return CriticalPathReport(
        baseline_ps={s: p.delay_ps for s, p in baseline_paths(geom).items()},
        protected_ps={s: p.delay_ps for s, p in protected_paths(geom).items()},
    )
