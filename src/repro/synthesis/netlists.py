"""Structural netlists of the baseline router and the correction circuitry.

The FIT tables (paper Tables I/II, :mod:`repro.reliability.stages`) census
only the *fundamental components* of each stage.  A synthesised router
additionally contains per-VC state registers (the G/R/O/P/C fields of
Figure 3d) and the pipeline output registers — sequential infrastructure
that contributes to area/power but not to the paper's FIT accounting.
The netlists here therefore extend the FIT inventories with that
infrastructure, which is exactly what makes the area ratio land near the
paper's synthesis result (~28 % for correction circuitry alone).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.stages import (
    RouterGeometry,
    StageInventory,
    baseline_stages,
    correction_stages,
)
from .gates import Block


#: Default switching activity.  RTL synthesis power reports use a uniform
#: default activity factor when no simulation activity file is supplied —
#: the paper reports "average power (dynamic+static)" from synthesis, so
#: the proxy applies the same uniform factor to all blocks.  Sequential
#: cells additionally carry the clock-load multiplier (gates.py).
COMBINATIONAL_ACTIVITY = 0.20
STATE_FIELD_ACTIVITY = COMBINATIONAL_ACTIVITY


@dataclass(frozen=True)
class RouterNetlist:
    """Blocks of one design (baseline router or correction circuitry)."""

    name: str
    blocks: tuple[Block, ...]

    @property
    def transistors(self) -> float:
        return sum(b.transistors for b in self.blocks)

    @property
    def area_um2(self) -> float:
        return sum(b.area_um2 for b in self.blocks)

    @property
    def static_power_nw(self) -> float:
        return sum(b.static_power_nw for b in self.blocks)

    @property
    def dynamic_power_nw(self) -> float:
        return sum(b.dynamic_power_nw for b in self.blocks)

    @property
    def total_power_nw(self) -> float:
        return self.static_power_nw + self.dynamic_power_nw


def _stage_blocks(
    stages: dict[str, StageInventory], sequential_stages: frozenset[str]
) -> list[Block]:
    blocks = []
    for name, inv in stages.items():
        seq = name in sequential_stages
        blocks.append(
            Block(
                name=f"{name} components",
                transistors=inv.transistors,
                sequential=seq,
                activity=STATE_FIELD_ACTIVITY if seq else COMBINATIONAL_ACTIVITY,
            )
        )
    return blocks


def vc_state_field_bits(geom: RouterGeometry) -> int:
    """Bits of the per-VC G/R/O/P/C fields (Figure 3d).

    G: 3 (pipeline state), R: port_bits, O: vc_bits, P: 2x pointer bits,
    C: credit count bits (buffer depth 4 -> 3 bits).
    """
    import math

    pointer_bits = max(1, math.ceil(math.log2(4)))  # 4-deep VCs
    credit_bits = pointer_bits + 1
    return 3 + geom.port_bits + geom.vc_bits + 2 * pointer_bits + credit_bits


#: transistors per register bit (matches reliability.components DFF cell)
REGISTER_TRANSISTORS_PER_BIT = 25


def baseline_netlist(geom: RouterGeometry | None = None) -> RouterNetlist:
    """The synthesised baseline router pipeline.

    FIT components of Table I + the sequential infrastructure: per-VC
    state fields and per-port pipeline output registers.
    """
    geom = geom or RouterGeometry()
    blocks = _stage_blocks(baseline_stages(geom), frozenset())

    P, V = geom.num_ports, geom.num_vcs
    state_bits = vc_state_field_bits(geom) * P * V
    blocks.append(
        Block(
            "VC state fields (G/R/O/P/C)",
            state_bits * REGISTER_TRANSISTORS_PER_BIT,
            sequential=True,
            activity=STATE_FIELD_ACTIVITY,
        )
    )
    # per-port pipeline output register: flit width + a few control bits
    pipe_bits = (geom.flit_width + 4) * P
    blocks.append(
        Block(
            "pipeline output registers",
            pipe_bits * REGISTER_TRANSISTORS_PER_BIT,
            sequential=True,
            activity=COMBINATIONAL_ACTIVITY,
        )
    )
    return RouterNetlist("baseline router", tuple(blocks))


#: Which correction-circuitry stages are flip-flop dominated (Table II).
_CORRECTION_SEQUENTIAL = frozenset({"VA", "SA"})


def correction_netlist(geom: RouterGeometry | None = None) -> RouterNetlist:
    """The synthesised correction circuitry (exactly Table II's census)."""
    geom = geom or RouterGeometry()
    blocks = _stage_blocks(correction_stages(geom), _CORRECTION_SEQUENTIAL)
    return RouterNetlist("correction circuitry", tuple(blocks))


#: Fault-detection surcharge (the paper assumes an existing mechanism,
#: NoCAlert [18]; incorporating it moves the overheads from 28 %/29 % to
#: 31 %/30 %, i.e. ~3 % extra area and ~1 % extra power of the baseline).
DETECTION_AREA_FRACTION = 0.03
DETECTION_POWER_FRACTION = 0.01


def detection_netlist(geom: RouterGeometry | None = None) -> RouterNetlist:
    """Idealised fault-detection block sized as a baseline fraction."""
    geom = geom or RouterGeometry()
    base = baseline_netlist(geom)
    # express the area surcharge as an equivalent transistor count; tune
    # activity so the power surcharge fraction also holds
    t = base.transistors * DETECTION_AREA_FRACTION
    target_power = base.total_power_nw * DETECTION_POWER_FRACTION
    from .gates import DYNAMIC_PER_TRANSISTOR_NW, LEAKAGE_PER_TRANSISTOR_NW

    activity = max(
        0.0,
        min(
            1.0,
            (target_power / t - LEAKAGE_PER_TRANSISTOR_NW)
            / DYNAMIC_PER_TRANSISTOR_NW,
        ),
    )
    return RouterNetlist(
        "fault detection (NoCAlert stand-in)",
        (Block("detection logic", t, sequential=False, activity=activity),),
    )
