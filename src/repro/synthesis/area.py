"""Area analysis (paper Section VI-A).

"Based on the synthesis results, the correction circuitry increases the
area ... of the protected router by 28 % with respect to that of the
baseline router.  Incorporating fault detection mechanism [18], the
resulting area ... overhead is 31 %."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..reliability.stages import RouterGeometry
from .netlists import (
    baseline_netlist,
    correction_netlist,
    detection_netlist,
)


@dataclass(frozen=True)
class AreaReport:
    """Areas (um^2) and overhead fractions for one router geometry."""

    baseline_um2: float
    correction_um2: float
    detection_um2: float

    @property
    def protected_um2(self) -> float:
        """Protected router without detection."""
        return self.baseline_um2 + self.correction_um2

    @property
    def correction_overhead(self) -> float:
        """Correction circuitry only (paper: ~28 %)."""
        return self.correction_um2 / self.baseline_um2

    @property
    def total_overhead(self) -> float:
        """Correction + detection (paper: ~31 %)."""
        return (self.correction_um2 + self.detection_um2) / self.baseline_um2


def analyze_area(geom: RouterGeometry | None = None) -> AreaReport:
    """Synthesise (proxy) the three netlists and report overheads."""
    geom = geom or RouterGeometry()
    return AreaReport(
        baseline_um2=baseline_netlist(geom).area_um2,
        correction_um2=correction_netlist(geom).area_um2,
        detection_um2=detection_netlist(geom).area_um2,
    )


def area_overhead(
    geom: RouterGeometry | None = None, with_detection: bool = True
) -> float:
    """Overhead fraction used by the SPF analysis (paper uses 31 %)."""
    rep = analyze_area(geom)
    return rep.total_overhead if with_detection else rep.correction_overhead


def area_overhead_vs_vcs(
    vc_counts: list[int] | None = None,
    num_ports: int = 5,
    with_detection: bool = True,
) -> dict[int, float]:
    """Overhead fraction per VC count (feeds the SPF sensitivity study)."""
    vc_counts = vc_counts or [2, 3, 4, 6, 8]
    out = {}
    for v in vc_counts:
        geom = RouterGeometry(num_ports=num_ports, num_vcs=v)
        out[v] = area_overhead(geom, with_detection=with_detection)
    return out
