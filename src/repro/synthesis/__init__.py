"""Gate-level area/power/critical-path proxy (Cadence 45 nm substitute)."""

from .area import AreaReport, analyze_area, area_overhead, area_overhead_vs_vcs
from .gates import (
    AREA_PER_TRANSISTOR_UM2,
    Block,
    DEFAULT_ACTIVITY,
    GATE_DELAYS_PS,
    gate_delay,
)
from .netlists import (
    DETECTION_AREA_FRACTION,
    DETECTION_POWER_FRACTION,
    RouterNetlist,
    baseline_netlist,
    correction_netlist,
    detection_netlist,
    vc_state_field_bits,
)
from .power import PowerReport, analyze_power, power_overhead
from .timing import (
    CriticalPathReport,
    StagePath,
    analyze_critical_path,
    baseline_paths,
    protected_paths,
)

__all__ = [
    "AREA_PER_TRANSISTOR_UM2",
    "AreaReport",
    "Block",
    "CriticalPathReport",
    "DEFAULT_ACTIVITY",
    "DETECTION_AREA_FRACTION",
    "DETECTION_POWER_FRACTION",
    "GATE_DELAYS_PS",
    "PowerReport",
    "RouterNetlist",
    "StagePath",
    "analyze_area",
    "analyze_critical_path",
    "analyze_power",
    "area_overhead",
    "area_overhead_vs_vcs",
    "baseline_netlist",
    "baseline_paths",
    "correction_netlist",
    "detection_netlist",
    "gate_delay",
    "power_overhead",
    "protected_paths",
    "vc_state_field_bits",
]
