"""Per-event energy model: synthesis constants meet simulation counters.

Extension beyond the paper's average-power synthesis number: the
simulator's event counters (buffer writes, allocations, crossbar
traversals, secondary-path crossings, VC transfers) are priced with
per-event energies derived from the 45 nm proxy, yielding *workload-*
and *fault-dependent* energy — e.g. the extra demux/P-mux charge a
secondary-path crossing burns, or the buffer re-write cost of an SA
bypass transfer.

Per-event energies are order-of-magnitude 45 nm figures (a 32-bit buffer
write in the low pJ range, a crossbar traversal similar, arbitration an
order smaller); as with the rest of the proxy, *ratios* between designs
and scenarios are the meaningful output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..router.router import RouterStats


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules (45 nm ballpark)."""

    buffer_write_pj: float = 1.8
    buffer_read_pj: float = 1.2
    va_allocation_pj: float = 0.35
    sa_allocation_pj: float = 0.25
    xb_traversal_pj: float = 2.0
    #: extra charge of the correction circuitry on a secondary crossing
    #: (demux + P output mux on a 32-bit path)
    secondary_extra_pj: float = 0.9
    #: moving up to buffer_depth flits + state fields between VCs
    vc_transfer_pj: float = 6.0
    link_traversal_pj: float = 2.6
    rc_computation_pj: float = 0.2

    def router_energy_pj(self, stats: RouterStats) -> dict[str, float]:
        """Energy breakdown of one router (or an aggregate) in pJ."""
        breakdown = {
            "buffer": stats.buffer_writes * self.buffer_write_pj
            + stats.flits_traversed * self.buffer_read_pj,
            "va": stats.va_grants * self.va_allocation_pj,
            "sa": stats.sa_grants * self.sa_allocation_pj,
            "crossbar": stats.flits_traversed * self.xb_traversal_pj,
            "secondary_path": stats.secondary_path_grants
            * self.secondary_extra_pj,
            "vc_transfers": stats.vc_transfers * self.vc_transfer_pj,
            "links": stats.flits_traversed * self.link_traversal_pj,
            "rc": (stats.va_grants + stats.rc_duplicate_computations)
            * self.rc_computation_pj,
        }
        breakdown["total"] = sum(breakdown.values())
        return breakdown


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one simulation run."""

    breakdown_pj: dict[str, float]
    flits_delivered: int
    packets_delivered: int

    @property
    def total_pj(self) -> float:
        return self.breakdown_pj["total"]

    @property
    def pj_per_flit(self) -> float:
        if self.flits_delivered == 0:
            return float("nan")
        return self.total_pj / self.flits_delivered

    @property
    def pj_per_packet(self) -> float:
        if self.packets_delivered == 0:
            return float("nan")
        return self.total_pj / self.packets_delivered


def energy_of_run(result, model: EnergyModel | None = None) -> EnergyReport:
    """Price a :class:`repro.network.SimulationResult`'s activity."""
    model = model or EnergyModel()
    return EnergyReport(
        breakdown_pj=model.router_energy_pj(result.router_stats),
        flits_delivered=result.stats.flits_ejected,
        packets_delivered=result.stats.packets_ejected,
    )
