"""45 nm standard-cell proxy: area, power, and delay factors.

Substitutes for Cadence Encounter RTL Compiler + a commercial 45 nm
library (paper Section VI).  The model is deliberately simple and fully
documented:

* **Area** — proportional to transistor count.  The density factor is in
  the range of NanGate 45 nm open-cell figures (an INV_X1 is ~0.53 um^2
  for 4 devices, i.e. ~0.13 um^2 per transistor; larger cells are denser,
  sequential cells slightly less so).
* **Power** — static (leakage) proportional to transistor count; dynamic
  proportional to transistor count x switching activity x clock factor.
  Flip-flop-heavy blocks carry a clock-load multiplier because their
  clock pins toggle every cycle regardless of data activity.
* **Delay** — a per-cell-type table in picoseconds used by the critical
  path model (:mod:`repro.synthesis.timing`).

The reproduction target is the paper's *ratios* (area/power overhead
percentages, per-stage critical-path deltas), which are robust to the
absolute calibration; absolute um^2/mW values are indicative only.
"""

from __future__ import annotations

from dataclasses import dataclass


#: um^2 of layout area per transistor (45 nm standard-cell ballpark).
AREA_PER_TRANSISTOR_UM2 = 0.14

#: nW of leakage per transistor at 45 nm, 1.0 V, 300 K (order of magnitude).
LEAKAGE_PER_TRANSISTOR_NW = 1.0

#: nW of dynamic power per transistor at unit activity, 1 GHz, 1.0 V.
DYNAMIC_PER_TRANSISTOR_NW = 12.0

#: Clock-load multiplier for flip-flop transistors: their clock pins
#: switch every cycle, so sequential cells burn proportionally more
#: dynamic power than combinational logic at the same data activity.
DFF_CLOCK_POWER_FACTOR = 1.5

#: Default switching activity of combinational router logic.
DEFAULT_ACTIVITY = 0.20


@dataclass(frozen=True)
class Block:
    """One synthesis block: a bag of transistors with uniform character.

    ``sequential`` marks flip-flop transistors (clock-load factor applies);
    ``activity`` is the data switching activity used for dynamic power.
    """

    name: str
    transistors: float
    sequential: bool = False
    activity: float = DEFAULT_ACTIVITY

    def __post_init__(self) -> None:
        if self.transistors < 0:
            raise ValueError("transistor count must be >= 0")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")

    @property
    def area_um2(self) -> float:
        return self.transistors * AREA_PER_TRANSISTOR_UM2

    @property
    def static_power_nw(self) -> float:
        return self.transistors * LEAKAGE_PER_TRANSISTOR_NW

    @property
    def dynamic_power_nw(self) -> float:
        clock = DFF_CLOCK_POWER_FACTOR if self.sequential else 1.0
        return (
            self.transistors
            * DYNAMIC_PER_TRANSISTOR_NW
            * self.activity
            * clock
        )

    @property
    def total_power_nw(self) -> float:
        return self.static_power_nw + self.dynamic_power_nw


#: Gate delays in picoseconds (45 nm, typical corner, FO4-ish loads).
GATE_DELAYS_PS = {
    "inv": 12.0,
    "nand2": 16.0,
    "nor2": 18.0,
    "and2": 22.0,
    "xor2": 28.0,
    "mux2": 24.0,
    "mux4": 42.0,
    "mux5": 48.0,
    "demux2": 20.0,
    "demux3": 26.0,
    "dff_cq": 55.0,  # clock-to-Q
    "dff_setup": 30.0,
    "comparator_bit": 30.0,
    "arbiter_per_level": 26.0,
    "priority_scan": 34.0,
}


def gate_delay(kind: str) -> float:
    """Delay of one gate/cell type in picoseconds."""
    try:
        return GATE_DELAYS_PS[kind]
    except KeyError:
        raise ValueError(
            f"unknown gate kind {kind!r}; known: {sorted(GATE_DELAYS_PS)}"
        ) from None
