"""The paper's contribution: the multi-fault-tolerant protected router."""

from .failure import (
    baseline_router_failed,
    failed_stages,
    protected_router_failed,
    rc_port_failed,
    sa_port_failed,
    va2_output_failed,
    va_port_failed,
    xb_output_failed,
)
from .ft_crossbar import (
    SecondaryPathCrossbar,
    demux_fanouts,
    max_tolerable_mux_faults,
    reachable_outputs_exact,
    secondary_source,
)
from .ft_rc import DuplicatedRCUnit
from .ft_sa import BypassSAUnit
from .ft_va import ArbiterSharingVAUnit
from .protected_router import ProtectedRouter, protected_router_factory

__all__ = [
    "ArbiterSharingVAUnit",
    "BypassSAUnit",
    "DuplicatedRCUnit",
    "ProtectedRouter",
    "SecondaryPathCrossbar",
    "baseline_router_failed",
    "demux_fanouts",
    "failed_stages",
    "max_tolerable_mux_faults",
    "protected_router_factory",
    "protected_router_failed",
    "rc_port_failed",
    "reachable_outputs_exact",
    "sa_port_failed",
    "secondary_source",
    "va2_output_failed",
    "va_port_failed",
    "xb_output_failed",
]
