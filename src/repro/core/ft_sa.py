"""Fault-tolerant switch allocation (paper Section V-C).

**Stage 1 — bypass path.**  Each input port's ``v:1`` arbiter gets a 2:1
multiplexer and a small register holding a *default winner* VC identity.
When the arbiter is faulty the mux forwards the register value instead:
the default winner is selected "without arbitration".  To avoid starving
the other VCs the default winner rotates over all VCs of the port
(Section V-C1: "the best way ... is to make every input VC the default
winner at different points of time").

If the default winner VC is empty while a sibling VC holds flits, the
flits *and state fields* of that sibling are transferred into the default
VC, costing one cycle ("the transferring process between two input VCs
incurs an additional latency of only 1 cycle").  The transfer is modelled
by the input port's slot swap — see
:class:`repro.router.input_port.InputPort`.

**Stage 2** is protected by the crossbar's secondary path: requests whose
output-port arbiter (or mux) is faulty are steered — via the ``SP``/``FSP``
fields computed from the path plan — to arbitrate for the secondary-source
port instead (Section V-C2).  That logic lives in the shared allocator +
:class:`repro.core.ft_crossbar.SecondaryPathCrossbar`; no override is
needed here beyond trusting the plan.
"""

from __future__ import annotations

from typing import Optional

from ..router.allocator import SAUnit
from ..router.vc import VCState


class BypassSAUnit(SAUnit):
    """SA unit with the stage-1 bypass path and VC transfer."""

    def _default_winner(self, cycle: int) -> int:
        """Rotating default-winner physical slot for this cycle."""
        cfg = self.router.config
        return (cycle // cfg.bypass_rotation_period) % cfg.num_vcs

    def _stage1_winner(self, port: int, candidates: list[int], cycle: int) -> Optional[int]:
        faults = self.router.faults
        if port not in faults.sa1:
            return self.stage1[port].grant(candidates)
        if port in faults.sa1_bypass:
            # arbiter and bypass both dead: no switch allocation possible
            # at this port (Section VIII-C failure condition)
            self.router.stats.sa_blocked_cycles += 1
            return None

        default = self._default_winner(cycle)
        if default in candidates:
            self.router.stats.sa_bypass_grants += 1
            tracer = self.router.tracer
            if tracer is not None:
                tracer.emit(
                    cycle,
                    "sa_bypass",
                    self.router.node,
                    port=port,
                    slot=default,
                    packet=self.router.in_ports[port].slots[default].packet_id,
                )
            return default

        # The default VC has nothing to send.  If it is empty and idle and
        # a sibling has flits ready, transfer the sibling into the default
        # slot; the transfer consumes this cycle.
        in_port = self.router.in_ports[port]
        default_vc = in_port.slots[default]
        if candidates and default_vc.state == VCState.IDLE and default_vc.is_empty:
            src = candidates[0]
            in_port.swap_slots(src, default)
            self.router.stats.vc_transfers += 1
        return None
