"""Secondary-path crossbar (paper Section V-D, Figure 6).

The baseline crossbar has a single ``pi:1`` mux per output port.  The
protected crossbar adds, for a 5x5 router, one 1:3 demultiplexer, three
1:2 demultiplexers, and five 2:1 output multiplexers (P1..P5) so that
every output port can be fed by *two* muxes.

The secondary-source map is reconstructed from the paper's example
("output port 3 ... can be reached through either multiplexer M3 or M2")
and its fault accounting ("if multiplexers M2 and M4 are each affected by
a fault, the crossbar is still functional ... a fault in any other
multiplexer (M1, M3 or M5) ... will result in failure"):

    secondary(out_k) = M_{k-1}   for k >= 2   (1-based, as in the paper)
    secondary(out_1) = M_2

With 0-based ports: ``secondary(k) = k - 1`` for ``k >= 1`` and
``secondary(0) = 1``.  This yields exactly the paper's circuitry —
M2 (0-based: mux 1) feeds three outputs (its own plus out1 and out3's
secondaries) through the single 1:3 demux; M1, M3, M4 feed two outputs
each through 1:2 demuxes; M5 feeds only its own output — and reproduces
the {M2, M4}-tolerable / M1-M3-M5-fatal behaviour.

A faulty SA stage-2 arbiter is tolerated by the same path (Section V-C2):
flits redirected to arbitrate for the secondary-source port reach the
original output through that port's mux and the demux network.
"""

from __future__ import annotations

from typing import Optional

from ..router.crossbar import Crossbar, PathPlan


def secondary_source(dest: int, num_ports: int) -> int:
    """Mux that provides the secondary path to output ``dest`` (0-based)."""
    if num_ports < 2:
        raise ValueError("secondary paths need at least 2 output ports")
    if not 0 <= dest < num_ports:
        raise ValueError(f"output {dest} out of range")
    return 1 if dest == 0 else dest - 1


def demux_fanouts(num_ports: int) -> dict[int, int]:
    """Number of outputs each mux feeds (1 => no demux needed).

    For the paper's 5-port router this returns ``{0: 2, 1: 3, 2: 2, 3: 2,
    4: 1}`` — one 1:3 demux, three 1:2 demuxes, matching Section V-D.
    """
    fan = {m: 1 for m in range(num_ports)}
    for k in range(num_ports):
        fan[secondary_source(k, num_ports)] += 1
    return fan


class SecondaryPathCrossbar(Crossbar):
    """Crossbar with the Figure 6 correction circuitry."""

    def _compute_plan(self, dest: int) -> Optional[PathPlan]:
        if not (0 <= dest < self.num_ports):
            raise ValueError(f"output port {dest} out of range")
        self.plans_computed += 1
        faults = self.faults
        normal_ok = dest not in faults.xb_mux and dest not in faults.sa2
        if normal_ok:
            return PathPlan(arb_port=dest, mux=dest, dest=dest, secondary=False)
        src = secondary_source(dest, self.num_ports)
        secondary_ok = (
            dest not in faults.xb_secondary  # demux / P-mux circuitry
            and src not in faults.xb_mux
            and src not in faults.sa2
        )
        if secondary_ok:
            return PathPlan(arb_port=src, mux=src, dest=dest, secondary=True)
        return None


def reachable_outputs_exact(
    num_ports: int,
    mux_faults: frozenset[int] = frozenset(),
    secondary_faults: frozenset[int] = frozenset(),
    sa2_faults: frozenset[int] = frozenset(),
) -> list[bool]:
    """Exact reachability of each output under a fault set.

    Standalone (no router instance) version of the plan computation, used
    by the failure predicates and the SPF Monte-Carlo.  Output ``k`` is
    reachable iff its normal path (mux k + arbiter k) or its secondary
    path (demux/P-mux k + mux src + arbiter src) is fully healthy.
    """
    out = []
    for k in range(num_ports):
        normal = k not in mux_faults and k not in sa2_faults
        src = secondary_source(k, num_ports)
        secondary = (
            k not in secondary_faults
            and src not in mux_faults
            and src not in sa2_faults
        )
        out.append(normal or secondary)
    return out


def max_tolerable_mux_faults(num_ports: int) -> int:
    """Largest number of *mux* faults that can leave all outputs reachable.

    Exhaustive search over mux-fault subsets (5-port: 32 subsets).  For the
    paper's 5-port crossbar this returns 3 (e.g. {M1, M3, M5}); the paper
    conservatively states 2 — see DESIGN.md item 4.  The SPF reproduction
    uses the paper's accounting; this exact figure feeds the extended
    analysis.
    """
    from itertools import combinations

    best = 0
    ports = range(num_ports)
    for r in range(num_ports + 1):
        found = False
        for subset in combinations(ports, r):
            if all(
                reachable_outputs_exact(num_ports, mux_faults=frozenset(subset))
            ):
                found = True
                break
        if found:
            best = r
        else:
            break
    return best
