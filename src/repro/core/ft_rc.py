"""Fault-tolerant routing computation (paper Section V-A).

"To provide fault tolerance to this stage, we propose to have a redundant
RC unit for each input port.  The duplicate RC unit can be turned on and
used upon detection of a fault in the original unit."

Spatial redundancy: zero latency penalty (Section VI-B: "Since RC stage
employs spatial redundancy, there is negligible impact on the critical
path").  The port only fails when the primary *and* duplicate units of the
same port are both faulty (Section VIII-A).
"""

from __future__ import annotations

from typing import Optional

from ..router.flit import Flit
from ..router.router import RCUnit


class DuplicatedRCUnit(RCUnit):
    """RC unit with a per-port spatial spare."""

    def compute(self, in_port: int, flit: Flit) -> Optional[int]:
        faults = self.router.faults
        if in_port not in faults.rc_primary:
            return self.select_route(flit)
        if in_port not in faults.rc_duplicate:
            self.router.stats.rc_duplicate_computations += 1
            return self.select_route(flit)
        # both units dead: routing computation impossible at this port
        return None

    def port_failed(self, in_port: int) -> bool:
        """Section VIII-A: primary + duplicate both faulty."""
        faults = self.router.faults
        return in_port in faults.rc_primary and in_port in faults.rc_duplicate
