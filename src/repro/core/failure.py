"""Failure predicates for the protected router (paper Section VIII).

The protected router keeps working until some pipeline stage can no longer
perform its function at some port:

* **RC** (VIII-A): a port's primary *and* duplicate RC units are faulty.
* **VA** (VIII-B): all ``v`` stage-1 arbiter sets of one input port are
  faulty (no sibling left to borrow from).
* **SA** (VIII-C): a port's stage-1 arbiter *and* its bypass path are
  faulty.
* **XB** (VIII-D): an output port is reachable through neither its normal
  mux nor its secondary path.  The same condition covers SA stage-2
  arbiter faults, which are tolerated by the same secondary path.

These predicates drive the SPF Monte-Carlo (:mod:`repro.reliability.spf`)
and the simulator's ``router_failed`` diagnostics.  The *paper-accounting*
mode mirrors Section VIII exactly (VA stage-2 faults are not counted —
the paper's SPF analysis considers stage-1 sharing only, and XB faults are
capped per the paper's conservative max-2 statement is handled in the SPF
module, not here).  The *exact* mode additionally fails when every
downstream-VC arbiter of some (output port, vnet) pair is dead, which
blocks all VA to that port.
"""

from __future__ import annotations

from ..faults.sites import RouterFaultState
from .ft_crossbar import reachable_outputs_exact


def rc_port_failed(faults: RouterFaultState, port: int) -> bool:
    """Primary and duplicate RC units of ``port`` both faulty."""
    return port in faults.rc_primary and port in faults.rc_duplicate


def va_port_failed(faults: RouterFaultState, port: int) -> bool:
    """All stage-1 arbiter sets of ``port`` faulty (nothing to borrow)."""
    V = faults.config.num_vcs
    return all((port, s) in faults.va1 for s in range(V))


def sa_port_failed(faults: RouterFaultState, port: int) -> bool:
    """Stage-1 arbiter and bypass path of ``port`` both faulty."""
    return port in faults.sa1 and port in faults.sa1_bypass


def xb_output_failed(faults: RouterFaultState, out_port: int) -> bool:
    """Neither the normal nor the secondary path reaches ``out_port``."""
    P = faults.config.num_ports
    reach = reachable_outputs_exact(
        P,
        mux_faults=frozenset(faults.xb_mux),
        secondary_faults=frozenset(faults.xb_secondary),
        sa2_faults=frozenset(faults.sa2),
    )
    return not reach[out_port]


def va2_output_failed(faults: RouterFaultState, out_port: int) -> bool:
    """*Exact-model extension*: every downstream-VC arbiter of some vnet of
    ``out_port`` is faulty, so no packet can complete VA toward it."""
    cfg = faults.config
    for vnet in range(cfg.num_vnets):
        if all((out_port, d) in faults.va2 for d in cfg.vcs_of_vnet(vnet)):
            return True
    return False


def protected_router_failed(
    faults: RouterFaultState, exact: bool = False
) -> bool:
    """True when any pipeline stage of any port can no longer function.

    ``exact=True`` additionally applies the VA stage-2 exhaustion condition
    (see module docstring).
    """
    P = faults.config.num_ports
    for p in range(P):
        if rc_port_failed(faults, p) or va_port_failed(faults, p):
            return True
        if sa_port_failed(faults, p):
            return True
        if xb_output_failed(faults, p):
            return True
        if exact and va2_output_failed(faults, p):
            return True
    return False


def baseline_router_failed(faults: RouterFaultState) -> bool:
    """The unprotected router fails on its *first* pipeline fault.

    This is the paper's baseline model (Section VII): with no correction
    circuitry, a fault in any pipeline-stage component blocks traffic and
    the router is considered failed.
    """
    return faults.any_faults


def failed_stages(faults: RouterFaultState, exact: bool = False) -> list[str]:
    """Names of the stages whose failure condition holds (diagnostics)."""
    P = faults.config.num_ports
    out = []
    if any(rc_port_failed(faults, p) for p in range(P)):
        out.append("RC")
    if any(va_port_failed(faults, p) for p in range(P)):
        out.append("VA")
    if exact and any(va2_output_failed(faults, p) for p in range(P)):
        if "VA" not in out:
            out.append("VA")
    if any(sa_port_failed(faults, p) for p in range(P)):
        out.append("SA")
    if any(xb_output_failed(faults, p) for p in range(P)):
        out.append("XB")
    return out
