"""The protected router — the paper's proposed fault-tolerant design.

Assembles the four per-stage mechanisms of Section V on top of the shared
pipeline driver:

========== =============================================== ================
Stage      Mechanism                                        Module
========== =============================================== ================
RC         duplicate RC unit per input port                 :mod:`.ft_rc`
VA stage 1 arbiter sharing between VCs of a port            :mod:`.ft_va`
VA stage 2 retry with a different downstream VC             :mod:`.ft_va`
SA stage 1 bypass path + rotating default winner + transfer :mod:`.ft_sa`
SA stage 2 secondary-path redirect (SP/FSP)                 :mod:`.ft_crossbar`
XB         two physical paths per output port               :mod:`.ft_crossbar`
========== =============================================== ================

In the fault-free case every mechanism is inert and the protected router
behaves cycle-for-cycle like the baseline ("In the fault-free scenario,
the protected crossbar behaves just like the baseline crossbar",
Section V-D) — a property the integration tests assert.
"""

from __future__ import annotations

from ..config import NetworkConfig
from ..router.crossbar import Crossbar
from ..router.router import BaseRouter, RCUnit
from ..router.routing import RoutingFunction
from .failure import failed_stages, protected_router_failed
from .ft_crossbar import SecondaryPathCrossbar
from .ft_rc import DuplicatedRCUnit
from .ft_sa import BypassSAUnit
from .ft_va import ArbiterSharingVAUnit


class ProtectedRouter(BaseRouter):
    """Baseline pipeline + the paper's correction circuitry."""

    kind = "protected"

    def _make_crossbar(self) -> Crossbar:
        return SecondaryPathCrossbar(self.config.num_ports, self.faults)

    def _make_rc_unit(self) -> RCUnit:
        return DuplicatedRCUnit(self)

    def _make_va_unit(self, arbiter_kind: str) -> ArbiterSharingVAUnit:
        return ArbiterSharingVAUnit(self, arbiter_kind)

    def _make_sa_unit(self, arbiter_kind: str) -> BypassSAUnit:
        return BypassSAUnit(self, arbiter_kind)

    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """Section VIII failure condition over the current fault state."""
        return protected_router_failed(self.faults)

    @property
    def failed_stages(self) -> list[str]:
        return failed_stages(self.faults)


def protected_router_factory(config: NetworkConfig):
    """Router factory for :class:`repro.network.NoCSimulator`."""

    def make(node: int, routing: RoutingFunction) -> ProtectedRouter:
        return ProtectedRouter(node, config.router, routing)

    # marker consumed by the warm-network pool (repro.network.warm)
    make.router_kind = "protected"  # type: ignore[attr-defined]
    return make
