"""Fault-tolerant virtual-channel allocation (paper Section V-B).

**Stage 1 — arbiter sharing.**  Every input VC owns an identical set of
``po`` ``v:1`` arbiters.  When a VC's set is faulty, the VC *borrows* the
set of another VC of the same input port: it scans the ``G`` fields of its
siblings and picks the first whose arbiters are idle this cycle — i.e. a
VC that is idle or in switch-allocation (ACTIVE) state.  The borrow
protocol uses the Figure 4 fields: the borrower writes its RC result into
the lender's ``R2`` field, its identity into ``ID``, and raises ``VF``;
after a successful allocation the VA unit uses ``ID`` to update the
*borrower's* state and clears the lender's fields.

Two timing scenarios (Section V-B1):

* *Scenario 1* — the lender's arbiters are idle: allocation completes in
  the same cycle (only the critical path is affected).
* *Scenario 2* — the lender is itself in VA this cycle: the lender
  allocates first and the borrower waits one extra cycle.

**Stage 2 — inherent redundancy.**  A faulty per-downstream-VC arbiter
means that downstream VC can never be granted; the affected head flit
simply retries with a *different* free downstream VC next cycle (+1 cycle,
no extra circuitry).  We record the failed downstream VC in the VC's
``va_excluded`` set so the retry cannot loop on the same faulty arbiter.
"""

from __future__ import annotations

from ..router.allocator import VAUnit
from ..router.vc import VCState, VirtualChannel


class ArbiterSharingVAUnit(VAUnit):
    """VA unit with stage-1 arbiter sharing and stage-2 retry."""

    def __init__(self, router, arbiter_kind: str = "round_robin") -> None:
        super().__init__(router, arbiter_kind)
        #: (port, slot) arbiter sets already lent out this cycle
        self._lent: set[tuple[int, int]] = set()
        #: lenders whose R2/VF/ID fields must be cleared at end of cycle
        self._pending_clear: list[VirtualChannel] = []

    def reset(self) -> None:
        super().reset()
        self._lent.clear()
        self._pending_clear.clear()

    def allocate(self, cycle: int):
        self._lent.clear()
        grants = super().allocate(cycle)
        # "Once the arbiters ... have successfully allocated ... the VA unit
        # resets the R2, ID and VF fields" — we clear unconditionally at the
        # end of the cycle; an unsuccessful borrower re-raises VF next cycle.
        for lender in self._pending_clear:
            lender.clear_borrow_request()
        self._pending_clear.clear()
        return grants

    def _stage1_arbiters(self, port: int, slot: int):
        faults = self.router.faults
        if (port, slot) not in faults.va1:
            # A healthy set that is used by its owner this cycle cannot be
            # lent simultaneously.
            self._lent.add((port, slot))
            return slot, self.stage1[port][slot]

        # Borrower path: scan sibling VCs of the same input port.
        in_port = self.router.in_ports[port]
        borrower = in_port.slots[slot]
        for lender_slot, lender in enumerate(in_port.slots):
            if lender_slot == slot:
                continue
            if (port, lender_slot) in faults.va1:
                continue  # the sibling's set is faulty too
            if (port, lender_slot) in self._lent:
                continue  # already used/lent this cycle
            if lender.state in (VCState.IDLE, VCState.ACTIVE):
                # Scenario 1: arbiters idle -> borrow in the same cycle.
                lender.r2 = borrower.route
                lender.vf = True
                lender.borrower_id = slot
                self._pending_clear.append(lender)
                self._lent.add((port, lender_slot))
                return lender_slot, self.stage1[port][lender_slot]
        # Scenario 2 (or no healthy sibling set at all): wait this cycle.
        self.router.stats.va_borrow_wait_cycles += 1
        return None

    def _on_stage2_fault(self, vc: VirtualChannel, out_port: int, dvc: int) -> None:
        """Exclude the faulty downstream-VC arbiter from the retry."""
        if vc.va_excluded is None:
            vc.va_excluded = set()
        vc.va_excluded.add(dvc)
        vc.va_retry += 1

    # ------------------------------------------------------------------
    def port_failed(self, port: int) -> bool:
        """Section VIII-B: all ``v`` arbiter sets of the port faulty."""
        faults = self.router.faults
        return all(
            (port, s) in faults.va1 for s in range(self.router.config.num_vcs)
        )
