"""repro — reproduction of Poluri & Louri, "An Improved Router Design for
Reliable On-Chip Networks" (IPDPS 2014).

Public API tour
---------------
* :mod:`repro.router` — the generic 4-stage VC router substrate.
* :mod:`repro.core` — the paper's contribution: the protected router.
* :mod:`repro.network` — the cycle-accurate mesh/torus simulator.
* :mod:`repro.faults` — permanent-fault sites and injection schedules.
* :mod:`repro.reliability` — FORC/FIT/SOFR/MTTF/SPF analysis.
* :mod:`repro.synthesis` — 45 nm gate-level area/power/timing proxy.
* :mod:`repro.comparison` — BulletProof / Vicis / RoCo reliability models.
* :mod:`repro.traffic` — synthetic patterns and SPLASH-2/PARSEC surrogates.
* :mod:`repro.experiments` — regenerates every paper table and figure.
"""

from .config import NetworkConfig, RouterConfig, SimulationConfig, replace

__version__ = "1.0.0"

__all__ = [
    "NetworkConfig",
    "RouterConfig",
    "SimulationConfig",
    "replace",
    "__version__",
]
