"""repro — reproduction of Poluri & Louri, "An Improved Router Design for
Reliable On-Chip Networks" (IPDPS 2014).

Public API tour
---------------
* :mod:`repro.router` — the generic 4-stage VC router substrate.
* :mod:`repro.core` — the paper's contribution: the protected router.
* :mod:`repro.network` — the cycle-accurate mesh/torus simulator.
* :mod:`repro.faults` — permanent-fault sites and injection schedules.
* :mod:`repro.reliability` — FORC/FIT/SOFR/MTTF/SPF analysis.
* :mod:`repro.synthesis` — 45 nm gate-level area/power/timing proxy.
* :mod:`repro.comparison` — BulletProof / Vicis / RoCo reliability models.
* :mod:`repro.traffic` — synthetic patterns and SPLASH-2/PARSEC surrogates.
* :mod:`repro.experiments` — regenerates every paper table and figure.
* :mod:`repro.observability` — zero-cost metrics/tracing/profiling layer.

The headline classes are re-exported here lazily, so ``import repro``
stays cheap while ``repro.NoCSimulator``, ``repro.run_sweep``,
``repro.sweep_runtime`` etc. resolve on first touch::

    import repro

    result = repro.run_experiment("table3", quick=True)
    with repro.sweep_runtime(out_dir="runs/sweep"):
        ...

Deprecated names keep working through the same lazy hook but emit a
:class:`DeprecationWarning` and are scheduled for removal in 2.0
(currently: top-level ``replace`` — use :func:`repro.config.replace`).
"""

from .config import NetworkConfig, RouterConfig, SimulationConfig

__version__ = "1.0.0"

#: lazily resolved facade: exported name -> (module, attribute)
_LAZY = {
    # simulator surface
    "NoCSimulator": ("repro.network", "NoCSimulator"),
    "SimulationResult": ("repro.network", "SimulationResult"),
    "ProtectedRouter": ("repro.core", "ProtectedRouter"),
    "BaselineRouter": ("repro.router", "BaselineRouter"),
    # sweep engine
    "run_sweep": ("repro.experiments.parallel", "run_sweep"),
    "map_sweep": ("repro.experiments.parallel", "map_sweep"),
    "SweepTask": ("repro.experiments.parallel", "SweepTask"),
    "SweepReport": ("repro.experiments.parallel", "SweepReport"),
    "SweepError": ("repro.experiments.parallel", "SweepError"),
    "PointFailure": ("repro.experiments.parallel", "PointFailure"),
    # resilient runtime (docs/resilience.md)
    "PartialSweepReport": ("repro.experiments.parallel", "PartialSweepReport"),
    "PartialSweepError": ("repro.experiments.parallel", "PartialSweepError"),
    "RetryPolicy": ("repro.experiments.resilient", "RetryPolicy"),
    "CheckpointStore": ("repro.experiments.resilient", "CheckpointStore"),
    "ResumeError": ("repro.experiments.resilient", "ResumeError"),
    "sweep_runtime": ("repro.experiments.resilient", "sweep_runtime"),
    # experiment harness
    "run_experiment": ("repro.experiments", "run_experiment"),
    "ExperimentResult": ("repro.experiments", "ExperimentResult"),
    # unified fault-schedule API + online campaigns (docs/campaigns.md)
    "FaultSchedule": ("repro.faults", "FaultSchedule"),
    "FaultTimeline": ("repro.faults", "FaultTimeline"),
    "make_schedule": ("repro.faults", "make_schedule"),
    "CampaignConfig": ("repro.experiments.fault_campaign", "CampaignConfig"),
    "run_fault_campaign": ("repro.experiments.fault_campaign", "run"),
    # observability
    "Observability": ("repro.observability", "Observability"),
    "ObservabilityConfig": ("repro.observability", "ObservabilityConfig"),
    "MetricsRegistry": ("repro.observability", "MetricsRegistry"),
    "EventTracer": ("repro.observability", "EventTracer"),
}

#: deprecated top-level names: name -> (module, attribute, replacement hint)
_DEPRECATED = {
    "replace": ("repro.config", "replace", "repro.config.replace"),
}

__all__ = [
    "BaselineRouter",
    "CampaignConfig",
    "CheckpointStore",
    "EventTracer",
    "ExperimentResult",
    "FaultSchedule",
    "FaultTimeline",
    "MetricsRegistry",
    "NetworkConfig",
    "NoCSimulator",
    "Observability",
    "ObservabilityConfig",
    "PartialSweepError",
    "PartialSweepReport",
    "PointFailure",
    "ProtectedRouter",
    "ResumeError",
    "RetryPolicy",
    "RouterConfig",
    "SimulationConfig",
    "SimulationResult",
    "SweepError",
    "SweepReport",
    "SweepTask",
    "make_schedule",
    "run_experiment",
    "run_fault_campaign",
    "run_sweep",
    "map_sweep",
    "sweep_runtime",
    "__version__",
]


def __getattr__(name: str):
    import importlib

    entry = _LAZY.get(name)
    if entry is not None:
        module, attr = entry
        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value  # cache: __getattr__ runs once per name
        return value
    entry = _DEPRECATED.get(name)
    if entry is not None:
        import warnings

        module, attr, hint = entry
        warnings.warn(
            f"repro.{name} is deprecated and will be removed in 2.0; "
            f"use {hint} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY) | set(_DEPRECATED))
