#!/usr/bin/env python
"""Composing resilience mechanisms: pipeline FT + ECC datapath + adaptive
routing.

The paper's protected router defends the *control pipeline*.  Two
complementary mechanisms from the literature compose with it cleanly in
this library:

* **ECC on the datapath** (Vicis): Hamming SECDED codewords survive
  bit-flips in defective buffers/wires;
* **fault-aware adaptive routing** (west-first turn model): when an
  output port dies *entirely* (normal + secondary paths — beyond what
  the in-router redundancy can absorb), detourable traffic routes around
  the dead port at the network level.

This example exercises all three layers at once and reports what each
contributed.

Run:  python examples/composed_resilience.py
"""

from repro.comparison.ecc_sim import run_ecc_study
from repro.config import NetworkConfig, PORT_EAST, RouterConfig, SimulationConfig
from repro.core import protected_router_factory
from repro.faults import FaultSite, FaultUnit, ExplicitFaultSchedule
from repro.network import NoCSimulator
from repro.traffic import SyntheticTraffic


def layer1_pipeline_ft() -> None:
    print("=== layer 1: the paper's in-router fault tolerance ===")
    net = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
    victim = net.node_id(1, 1)
    faults = ExplicitFaultSchedule([
        (0, FaultSite(victim, FaultUnit.RC_PRIMARY, 4)),
        (0, FaultSite(victim, FaultUnit.SA1_ARBITER, 4)),
        (0, FaultSite(victim, FaultUnit.XB_MUX, PORT_EAST)),
    ])
    sim = NoCSimulator(
        net,
        SimulationConfig(warmup_cycles=300, measure_cycles=3000,
                         drain_cycles=4000, seed=5),
        SyntheticTraffic(net, injection_rate=0.08, rng=5),
        router_factory=protected_router_factory(net),
        fault_schedule=faults,
    )
    res = sim.run()
    print(f"  3 pipeline faults in one router: latency "
          f"{res.avg_network_latency:.2f} cycles, "
          f"{res.stats.packets_ejected}/{res.stats.packets_created} delivered")


def layer2_ecc() -> None:
    print("\n=== layer 2: ECC shields the datapath (Vicis-style) ===")
    study = run_ecc_study(faulty_ports_per_router=0.4, measure_cycles=2500,
                          seed=3)
    print(f"  payload bits flipped in transit : {study.bits_flipped}")
    print(f"  deliveries clean                : {study.clean}")
    print(f"  deliveries corrected by SECDED  : {study.corrected}")
    print(f"  detected-uncorrectable          : {study.uncorrectable}")
    print(f"  silent corruptions              : {study.silent_corruptions}")
    print(f"  data protected                  : {study.protected_fraction:.1%}")


def layer3_adaptive_routing() -> None:
    print("\n=== layer 3: adaptive routing detours a dead output port ===")
    from repro.router.flit import Packet
    from repro.traffic import TraceTraffic

    net = NetworkConfig(width=4, height=4, router=RouterConfig(num_vcs=4))
    victim = net.node_id(1, 1)
    dead_output = [
        (0, FaultSite(victim, FaultUnit.XB_MUX, PORT_EAST)),
        (0, FaultSite(victim, FaultUnit.XB_SECONDARY, PORT_EAST)),
    ]

    def flows():
        return [
            Packet(src=net.node_id(0, 1), dest=net.node_id(3, 2),
                   size_flits=1, creation_cycle=10 + 2 * i)
            for i in range(25)
        ]

    for kind in ("xy", "west_first"):
        sim = NoCSimulator(
            net,
            SimulationConfig(warmup_cycles=0, measure_cycles=500,
                             drain_cycles=2500, seed=7,
                             watchdog_cycles=900),
            TraceTraffic(flows()),
            router_factory=protected_router_factory(net),
            fault_schedule=ExplicitFaultSchedule(list(dead_output)),
            routing_kind=kind,
        )
        res = sim.run()
        status = "BLOCKED" if res.blocked else "ok"
        print(f"  {kind:<11}: delivered "
              f"{res.stats.packets_ejected}/{res.stats.packets_created} "
              f"[{status}]")


def main() -> None:
    layer1_pipeline_ft()
    layer2_ecc()
    layer3_adaptive_routing()


if __name__ == "__main__":
    main()
