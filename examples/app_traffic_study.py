#!/usr/bin/env python
"""Application-workload study: SPLASH-2/PARSEC surrogates on the mesh.

Shows the workload layer: per-application surrogate traffic (injection
rate, burstiness, directory hotspotting), trace record/replay for
reproducible comparisons, and a mini version of the paper's Figure 7
study (fault-free vs faulty latency per application).

Uses a reduced 4x4 configuration so it finishes in well under a minute;
the full 8x8 reproduction lives in `python -m repro.experiments fig7`.

Run:  python examples/app_traffic_study.py
"""

from repro.config import NetworkConfig, RouterConfig
from repro.experiments.latency import LatencyConfig, run_app_pair
from repro.traffic import (
    app_profile,
    directory_home_nodes,
    make_app_traffic,
    record_source,
    save_trace,
)


def describe_workloads() -> None:
    net = NetworkConfig(
        width=8, height=8, router=RouterConfig(num_vcs=4, num_vnets=2)
    )
    print("directory home nodes (hotspots):", directory_home_nodes(net))
    print("\napp surrogate fingerprints:")
    for name in ("water-nsq", "ocean", "blackscholes", "canneal"):
        p = app_profile(name)
        print(
            f"  {p.name:<13} [{p.suite}]  rate={p.injection_rate:.3f} "
            f"flits/node/cycle  burstiness={p.burstiness:.2f} "
            f"hotspot={p.hotspot_fraction:.0%}"
        )

    # record 2000 cycles of 'ocean' as a replayable trace
    traffic = make_app_traffic(net, "ocean", rng=11)
    packets = record_source(traffic, 2000)
    out = "/tmp/ocean_trace.jsonl"
    n = save_trace(packets, out)
    print(f"\nrecorded {n} 'ocean' packets to {out} (replay via TraceTraffic)")


def mini_figure7() -> None:
    cfg = LatencyConfig(
        width=4,
        height=4,
        warmup_cycles=500,
        measure_cycles=3_000,
        drain_cycles=4_000,
        num_faults=24,
    )
    print("\nmini Figure 7 (4x4 mesh, 24 tolerated faults):")
    print(f"{'app':<13} {'fault-free':>11} {'faulty':>9} {'overhead':>9}")
    for name in ("water-nsq", "lu", "fft", "ocean"):
        r = run_app_pair(app_profile(name), cfg)
        print(
            f"{r.app:<13} {r.fault_free:>11.2f} {r.faulty:>9.2f} "
            f"{r.overhead:>+9.1%}"
        )


def main() -> None:
    describe_workloads()
    mini_figure7()


if __name__ == "__main__":
    main()
