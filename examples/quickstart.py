#!/usr/bin/env python
"""Quickstart: simulate a small NoC and print latency statistics.

Builds a 4x4 mesh of *protected* routers (the paper's fault-tolerant
design), offers uniform-random traffic, and reports the basic numbers a
NoC architect looks at first: average latency, hops, and throughput.

Run:  python examples/quickstart.py
"""

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core import protected_router_factory
from repro.network import NoCSimulator
from repro.traffic import SyntheticTraffic


def main() -> None:
    # --- describe the fabric: 4x4 mesh, 5-port routers, 4 VCs, 4-flit VCs
    network = NetworkConfig(
        width=4,
        height=4,
        router=RouterConfig(num_ports=5, num_vcs=4, buffer_depth=4),
    )

    # --- describe the run: warm the network up, measure, then drain
    sim_config = SimulationConfig(
        warmup_cycles=1_000,
        measure_cycles=10_000,
        drain_cycles=5_000,
        seed=42,
    )

    # --- offered traffic: uniform random, 0.08 flits/node/cycle
    traffic = SyntheticTraffic(network, injection_rate=0.08, rng=42)

    # --- build and run
    sim = NoCSimulator(
        network,
        sim_config,
        traffic,
        router_factory=protected_router_factory(network),
    )
    result = sim.run()

    # --- report
    stats = result.stats
    print(f"simulated cycles     : {result.cycles}")
    print(f"packets delivered    : {stats.packets_ejected}")
    print(f"avg network latency  : {stats.avg_network_latency:.2f} cycles")
    print(f"avg total latency    : {stats.avg_total_latency:.2f} cycles")
    print(f"avg hops             : {stats.avg_hops:.2f} routers")
    print(
        "throughput           : "
        f"{stats.throughput(sim_config.measure_cycles, network.num_nodes):.4f}"
        " flits/node/cycle"
    )
    print(f"network drained      : {result.drained}")


if __name__ == "__main__":
    main()
