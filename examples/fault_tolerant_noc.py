#!/usr/bin/env python
"""Fault tolerance in action: baseline vs protected router under faults.

This example reproduces the paper's core claim at network scale:

1. Run a mesh of *baseline* routers, inject one SA-arbiter fault into a
   central router, and watch traffic wedge (the watchdog trips).
2. Run the *protected* router with the same fault — and then with a whole
   barrage of faults, one per stage type — and watch it keep delivering
   packets with only a small latency increase, while its FT mechanism
   counters (duplicate RC lookups, borrowed arbiters, bypass grants, VC
   transfers, secondary-path crossings) light up.

Run:  python examples/fault_tolerant_noc.py
"""

from repro.config import NetworkConfig, RouterConfig, SimulationConfig
from repro.core import protected_router_factory
from repro.faults import FaultSite, FaultUnit, ExplicitFaultSchedule
from repro.network import NoCSimulator, baseline_router_factory
from repro.traffic import SyntheticTraffic

NETWORK = NetworkConfig(
    width=4, height=4, router=RouterConfig(num_vcs=4, buffer_depth=4)
)
CENTRAL_ROUTER = NETWORK.node_id(1, 1)

#: a fault in the SA stage-1 arbiter of the central router's west port
SINGLE_FAULT = [(100, FaultSite(CENTRAL_ROUTER, FaultUnit.SA1_ARBITER, 4))]

#: one tolerated fault in every pipeline stage of the central router
MULTI_FAULT = [
    (100, FaultSite(CENTRAL_ROUTER, FaultUnit.RC_PRIMARY, 4)),
    (150, FaultSite(CENTRAL_ROUTER, FaultUnit.VA1_ARBITER_SET, 4, 0)),
    (200, FaultSite(CENTRAL_ROUTER, FaultUnit.SA1_ARBITER, 2)),
    (250, FaultSite(CENTRAL_ROUTER, FaultUnit.XB_MUX, 2)),
]


def run(protected: bool, faults, label: str):
    sim_config = SimulationConfig(
        warmup_cycles=500,
        measure_cycles=4_000,
        drain_cycles=4_000,
        seed=7,
        watchdog_cycles=1_500,
    )
    traffic = SyntheticTraffic(NETWORK, injection_rate=0.10, rng=7)
    factory = (
        protected_router_factory(NETWORK)
        if protected
        else baseline_router_factory(NETWORK)
    )
    sim = NoCSimulator(
        NETWORK,
        sim_config,
        traffic,
        router_factory=factory,
        fault_schedule=ExplicitFaultSchedule(faults) if faults else None,
    )
    result = sim.run()
    status = "BLOCKED (watchdog)" if result.blocked else (
        "drained" if result.drained else "still draining"
    )
    lat = result.avg_network_latency
    print(f"{label:<42} latency={lat:7.2f}  delivered="
          f"{result.stats.packets_ejected:5d}  [{status}]")
    return result


def main() -> None:
    print("-- baseline router --")
    run(False, [], "fault-free")
    run(False, SINGLE_FAULT, "one SA-arbiter fault (central router)")

    print("\n-- protected router (the paper's design) --")
    run(True, [], "fault-free")
    run(True, SINGLE_FAULT, "one SA-arbiter fault (central router)")
    result = run(True, MULTI_FAULT, "one fault in every pipeline stage")

    rs = result.router_stats
    print("\nfault-tolerance mechanisms exercised:")
    print(f"  duplicate RC computations : {rs.rc_duplicate_computations}")
    print(f"  borrowed VA allocations   : {rs.va_borrowed_grants}")
    print(f"  SA bypass grants          : {rs.sa_bypass_grants}")
    print(f"  VC transfers              : {rs.vc_transfers}")
    print(f"  secondary-path crossings  : {rs.secondary_path_grants}")


if __name__ == "__main__":
    main()
