#!/usr/bin/env python
"""Reliability study: FIT, MTTF, SPF, and what-if sweeps.

Walks the paper's Section VII/VIII analysis with the library's public API
and then goes beyond it: MTTF sensitivity to operating temperature and
voltage (the FORC/TDDB model makes these first-class), the SPF-vs-VC
trade-off, and a Monte-Carlo faults-to-failure distribution.

Run:  python examples/reliability_analysis.py
"""

import numpy as np

from repro.config import RouterConfig
from repro.reliability import (
    RouterGeometry,
    analyze_mttf,
    analyze_spf,
    baseline_stages,
    calibrated_parameters,
    correction_stages,
    monte_carlo_faults_to_failure,
    spf_vs_vc_count,
    total_fit,
)
from repro.synthesis import area_overhead_vs_vcs


def main() -> None:
    geom = RouterGeometry()  # the paper's 5x5, 4-VC router in an 8x8 mesh

    # --- Tables I & II: stage FIT rates ---
    print("per-stage FIT (failures per 1e9 hours):")
    base, corr = baseline_stages(geom), correction_stages(geom)
    for stage in ("RC", "VA", "SA", "XB"):
        print(
            f"  {stage}: baseline {base[stage].fit():8.1f}"
            f"   correction {corr[stage].fit():6.1f}"
        )
    print(f"  totals: {total_fit(base):.1f} / {total_fit(corr):.1f}")

    # --- Section VII: MTTF ---
    rep = analyze_mttf(geom)
    print(f"\nMTTF baseline : {rep.mttf_baseline_hours:12,.0f} h")
    print(f"MTTF protected: {rep.mttf_protected_hours:12,.0f} h "
          f"({rep.improvement:.1f}x, paper reports ~6x)")

    # --- what-if: hotter silicon (extension enabled by the FORC model) ---
    print("\nMTTF of the protected router vs junction temperature:")
    for temp in (300.0, 330.0, 360.0):
        l1 = total_fit(base, temp_k=temp)
        l2 = total_fit(corr, temp_k=temp)
        from repro.reliability import mttf_two_component_paper

        mttf = mttf_two_component_paper(l1, l2)
        print(f"  T = {temp:5.0f} K : {mttf:14,.0f} h")

    # --- what-if: recalibrated process (different per-FET FIT) ---
    harsh = calibrated_parameters(fit_per_fet=0.5)
    print(
        "\nwith a 5x worse per-FET FIT the baseline pipeline FIT becomes "
        f"{total_fit(base, params=harsh):.0f}"
    )

    # --- Section VIII: SPF ---
    spf = analyze_spf(area_overhead=0.31, config=RouterConfig())
    print(f"\nSPF (4 VCs, 31% overhead): {spf.spf:.1f} "
          f"(mean faults to failure {spf.mean_faults_to_failure:.0f})")
    for bounds in spf.stages:
        print(
            f"  {bounds.stage}: tolerates up to {bounds.max_tolerated} faults,"
            f" min {bounds.min_to_failure} to fail"
        )

    # --- SPF vs VC count, with the synthesis proxy supplying overheads ---
    sweep = spf_vs_vc_count(area_overhead_vs_vcs([2, 4, 6, 8]))
    print("\nSPF vs VCs per port:")
    for vcs, r in sweep.items():
        print(f"  {vcs} VCs: SPF {r.spf:5.1f} (area overhead {r.area_overhead:.0%})")

    # --- Monte-Carlo faults-to-failure ---
    mc = monte_carlo_faults_to_failure(trials=2000, rng=1)
    print(
        f"\nMonte-Carlo faults-to-failure: mean {mc.mean:.1f} "
        f"(min {mc.minimum}, median {mc.percentile(50):.0f}, max {mc.maximum})"
    )
    print(
        "  (the paper's '15' averages the analytic min 2 and max 28; "
        "random placement is harsher)"
    )
    hist, edges = np.histogram(mc.samples, bins=range(2, 30, 3))
    for h, lo, hi in zip(hist, edges, edges[1:]):
        print(f"  {lo:2d}-{hi - 1:2d} faults: {'#' * int(40 * h / hist.max())}")


if __name__ == "__main__":
    main()
